//===- RCInsert.cpp - reference count insertion (λpure -> λrc) ----------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "rc/RCInsert.h"

#include "rc/Borrow.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_map>
#include <unordered_set>

using namespace lz;
using namespace lz::lambda;
using namespace lz::rc;

namespace {

// Hashed sets (the λIR hot-spot conversion): membership-only queries
// everywhere; whenever set contents decide *emission order* of inc/dec
// statements the VarIds are sorted first, so the produced λrc — and every
// golden test downstream — is identical to the ordered-container days.
using VarSet = std::unordered_set<VarId>;

class RCInserter {
public:
  RCInserter(Function &F, const BorrowInfo &Info) : F(F), Info(Info) {}

  void run() {
    VarSet Owned;
    for (size_t I = 0; I != F.Params.size(); ++I) {
      if (Info.fnParamBorrowed(F.Name, I))
        Borrowed.insert(F.Params[I]);
      else
        Owned.insert(F.Params[I]);
    }
    F.Body = go(std::move(F.Body), std::move(Owned));
  }

private:
  bool isBorrowed(VarId V) const { return Borrowed.count(V) != 0; }

  //===------------------------------------------------------------------===//
  // Free variables (with join captures folded into jmp)
  //===------------------------------------------------------------------===//

  const VarSet &fv(const FnBody *B) {
    auto It = FVCache.find(B);
    if (It != FVCache.end())
      return It->second;
    VarSet S;
    switch (B->K) {
    case FnBody::Kind::Let: {
      S = fv(B->Next.get());
      S.erase(B->Var);
      for (VarId A : B->E.Args)
        S.insert(A);
      break;
    }
    case FnBody::Kind::JDecl: {
      // Body first so captured[j] is known before Next's jmps query it.
      VarSet BodyFV = fv(B->JBody.get());
      for (VarId P : B->Params)
        BodyFV.erase(P);
      Captured[B->Join] = BodyFV;
      S = fv(B->Next.get());
      break;
    }
    case FnBody::Kind::Case: {
      for (const Alt &A : B->Alts) {
        const VarSet &AS = fv(A.Body.get());
        S.insert(AS.begin(), AS.end());
      }
      if (B->Default) {
        const VarSet &DS = fv(B->Default.get());
        S.insert(DS.begin(), DS.end());
      }
      S.insert(B->Var);
      break;
    }
    case FnBody::Kind::Ret:
      S.insert(B->Var);
      break;
    case FnBody::Kind::Jmp: {
      for (VarId A : B->Args)
        S.insert(A);
      auto CIt = Captured.find(B->Join);
      assert(CIt != Captured.end() && "jmp before jdecl in fv traversal");
      S.insert(CIt->second.begin(), CIt->second.end());
      break;
    }
    case FnBody::Kind::Inc:
    case FnBody::Kind::Dec:
      assert(false && "RC insertion on a program that already has RC ops");
      break;
    case FnBody::Kind::Unreachable:
      break;
    }
    return FVCache.emplace(B, std::move(S)).first->second;
  }

  //===------------------------------------------------------------------===//
  // Transformation
  //===------------------------------------------------------------------===//

  /// Transforms \p B given that exactly the variables in \p Owned are
  /// owned-and-live on entry (borrowed variables are never owned). Owned
  /// variables no longer needed die here with a dec.
  FnBodyPtr go(FnBodyPtr B, VarSet Owned) {
    const VarSet &Live = fv(B.get());
    std::vector<VarId> Dead;
    for (VarId V : Owned)
      if (!Live.count(V))
        Dead.push_back(V);
    std::sort(Dead.begin(), Dead.end()); // deterministic dec order
    for (VarId V : Dead)
      Owned.erase(V);

    FnBodyPtr Result = goLive(std::move(B), std::move(Owned));
    for (VarId V : Dead)
      Result = makeDec(V, std::move(Result));
    return Result;
  }

  /// Number of *consuming* occurrences of each argument of \p E, given
  /// the borrow signatures for calls.
  std::unordered_map<VarId, unsigned>
  consumingMultiplicity(const Expr &E) const {
    std::unordered_map<VarId, unsigned> Mult;
    switch (E.K) {
    case Expr::Kind::Ctor:
    case Expr::Kind::PAp:
    case Expr::Kind::VAp:
      for (VarId A : E.Args)
        ++Mult[A];
      break;
    case Expr::Kind::Var:
      ++Mult[E.Args[0]];
      break;
    case Expr::Kind::FAp:
      for (size_t I = 0; I != E.Args.size(); ++I)
        if (!Info.fnParamBorrowed(E.Callee, I))
          ++Mult[E.Args[I]];
      break;
    case Expr::Kind::Proj: // handled separately
    case Expr::Kind::Lit:
    case Expr::Kind::BigLit:
      break;
    }
    return Mult;
  }

  /// \pre Owned == fv(B) ∩ owned variables.
  FnBodyPtr goLive(FnBodyPtr B, VarSet Owned) {
    switch (B->K) {
    case FnBody::Kind::Let: {
      const VarSet &NextLive = fv(B->Next.get());
      VarId X = B->Var;
      bool XLive = NextLive.count(X) != 0;

      // Borrow-propagating bindings: alias of / projection from a
      // borrowed value yields a borrowed value — no RC traffic at all.
      if ((B->E.K == Expr::Kind::Proj || B->E.K == Expr::Kind::Var) &&
          isBorrowed(B->E.Args[0])) {
        Borrowed.insert(X);
        B->Next = go(std::move(B->Next), std::move(Owned));
        return B;
      }

      if (B->E.K == Expr::Kind::Proj) {
        // let x = proj_i y with owned y: borrow y, re-own the field.
        VarId Y = B->E.Args[0];
        bool YLive = NextLive.count(Y) != 0;
        VarSet NextOwned = Owned;
        if (XLive)
          NextOwned.insert(X);
        if (!YLive)
          NextOwned.erase(Y);
        FnBodyPtr Next = go(std::move(B->Next), std::move(NextOwned));
        if (!YLive)
          Next = makeDec(Y, std::move(Next));
        if (XLive)
          Next = makeInc(X, std::move(Next));
        B->Next = std::move(Next);
        return B;
      }

      // Pay for consuming uses with incs up front (ascending-VarId order,
      // as the ordered map used to iterate).
      std::unordered_map<VarId, unsigned> Mult =
          consumingMultiplicity(B->E);
      std::vector<VarId> MultVars;
      MultVars.reserve(Mult.size());
      for (const auto &Entry : Mult)
        MultVars.push_back(Entry.first);
      std::sort(MultVars.begin(), MultVars.end());
      std::vector<VarId> Incs;
      VarSet NextOwned = Owned;
      for (VarId Y : MultVars) {
        unsigned MC = Mult[Y];
        if (isBorrowed(Y)) {
          // We own zero references: buy one per consuming use.
          for (unsigned I = 0; I != MC; ++I)
            Incs.push_back(Y);
          continue;
        }
        bool LiveAfter = NextLive.count(Y) != 0;
        bool Keep = LiveAfter || MC == 0;
        unsigned Needed = MC + (Keep ? 1 : 0);
        assert(Needed >= 1 && "owned variable with no demand");
        for (unsigned I = 1; I < Needed; ++I)
          Incs.push_back(Y);
        if (!Keep)
          NextOwned.erase(Y);
      }
      // Owned arguments only passed at borrowed positions (MC == 0 and
      // absent from Mult entirely): they simply stay owned; the entry
      // cleanup of the continuation releases them when they die.

      bool NeedDecX = !XLive && producesOwned(B->E);
      if (XLive)
        NextOwned.insert(X);

      FnBodyPtr Next = go(std::move(B->Next), std::move(NextOwned));
      if (NeedDecX)
        Next = makeDec(X, std::move(Next));
      B->Next = std::move(Next);
      FnBodyPtr Result = std::move(B);
      for (VarId Y : Incs)
        Result = makeInc(Y, std::move(Result));
      return Result;
    }

    case FnBody::Kind::JDecl: {
      const VarSet &Cap = Captured.at(B->Join);
      VarSet BodyOwned;
      for (size_t I = 0; I != B->Params.size(); ++I) {
        if (Info.joinParamBorrowed(F.Name, B->Join, I))
          Borrowed.insert(B->Params[I]);
        else
          BodyOwned.insert(B->Params[I]);
      }
      for (VarId C : Cap)
        if (!isBorrowed(C))
          BodyOwned.insert(C);
      B->JBody = go(std::move(B->JBody), std::move(BodyOwned));
      B->Next = go(std::move(B->Next), std::move(Owned));
      return B;
    }

    case FnBody::Kind::Case: {
      for (Alt &A : B->Alts)
        A.Body = go(std::move(A.Body), Owned);
      if (B->Default)
        B->Default = go(std::move(B->Default), Owned);
      return B;
    }

    case FnBody::Kind::Ret: {
      // The return transfers one reference; a borrowed value must be
      // re-owned first. (Read Var before moving B: evaluation order of
      // function arguments is unspecified.)
      VarId RetVar = B->Var;
      if (isBorrowed(RetVar))
        return makeInc(RetVar, std::move(B));
      return B;
    }

    case FnBody::Kind::Jmp: {
      const VarSet &Cap = Captured.at(B->Join);
      std::unordered_map<VarId, unsigned> Mult;
      for (size_t I = 0; I != B->Args.size(); ++I)
        if (!Info.joinParamBorrowed(F.Name, B->Join, I))
          ++Mult[B->Args[I]];
      // Captured owned variables transfer one reference implicitly.
      for (VarId C : Cap)
        if (!isBorrowed(C))
          ++Mult[C];

      std::vector<VarId> MultVars;
      MultVars.reserve(Mult.size());
      for (const auto &Entry : Mult)
        MultVars.push_back(Entry.first);
      std::sort(MultVars.begin(), MultVars.end());
      std::vector<VarId> Incs;
      for (VarId Y : MultVars) {
        unsigned MC = Mult[Y];
        if (isBorrowed(Y)) {
          for (unsigned I = 0; I != MC; ++I)
            Incs.push_back(Y);
          continue;
        }
        assert(MC >= 1 && "owned var at jmp with no ownership demand");
        for (unsigned I = 1; I < MC; ++I)
          Incs.push_back(Y);
      }
      // Owned variables passed exclusively at borrowed positions cannot
      // occur: borrow inference demotes such join parameters.
      for (size_t I = 0; I != B->Args.size(); ++I) {
        assert((Mult.count(B->Args[I]) || isBorrowed(B->Args[I])) &&
               "owned argument at borrowed join position");
      }
      FnBodyPtr Result = std::move(B);
      for (VarId Y : Incs)
        Result = makeInc(Y, std::move(Result));
      return Result;
    }

    case FnBody::Kind::Inc:
    case FnBody::Kind::Dec:
      assert(false && "RC insertion is not idempotent");
      return B;

    case FnBody::Kind::Unreachable:
      return B;
    }
    return B;
  }

  /// True if the binding owns the expression result and must release it
  /// when dead.
  static bool producesOwned(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Ctor:
    case Expr::Kind::PAp:
    case Expr::Kind::FAp:
    case Expr::Kind::VAp:
    case Expr::Kind::BigLit:
    case Expr::Kind::Var:
      return true;
    case Expr::Kind::Lit:
      return false;
    case Expr::Kind::Proj:
      return false; // handled separately
    }
    return false;
  }

  Function &F;
  const BorrowInfo &Info;
  VarSet Borrowed;
  std::unordered_map<const FnBody *, VarSet> FVCache;
  std::unordered_map<JoinId, VarSet> Captured;
};

} // namespace

void rc::insertRC(lambda::Program &P, const RCOptions &Opts) {
  BorrowInfo Info;
  if (Opts.BorrowInference)
    Info = inferBorrowedParams(P);
  for (Function &F : P.Functions) {
    RCInserter I(F, Info);
    I.run();
  }
}

bool rc::hasRCOps(const lambda::Function &F) {
  bool Found = false;
  std::function<void(const FnBody &)> Walk = [&](const FnBody &B) {
    if (B.K == FnBody::Kind::Inc || B.K == FnBody::Kind::Dec)
      Found = true;
    if (B.JBody)
      Walk(*B.JBody);
    if (B.Next)
      Walk(*B.Next);
    if (B.Default)
      Walk(*B.Default);
    for (const Alt &A : B.Alts)
      Walk(*A.Body);
  };
  Walk(*F.Body);
  return Found;
}

unsigned rc::countRCOps(const lambda::Program &P) {
  unsigned N = 0;
  std::function<void(const FnBody &)> Walk = [&](const FnBody &B) {
    if (B.K == FnBody::Kind::Inc || B.K == FnBody::Kind::Dec)
      ++N;
    if (B.JBody)
      Walk(*B.JBody);
    if (B.Next)
      Walk(*B.Next);
    if (B.Default)
      Walk(*B.Default);
    for (const Alt &A : B.Alts)
      Walk(*A.Body);
  };
  for (const lambda::Function &F : P.Functions)
    Walk(*F.Body);
  return N;
}
