//===- RCInsert.h - reference count insertion (λpure -> λrc) ----*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts explicit Inc/Dec statements, turning λpure into λrc
/// (Section II-B: "λrc, an extension of λpure with reference counting").
/// The algorithm is the owned-reference discipline of Ullrich & de Moura's
/// "Counting Immutable Beans" (simplified: every parameter and binding is
/// owned; borrow inference is not performed — projections borrow and
/// re-own their result explicitly):
///
///   * every variable holds exactly one reference at its binding point;
///   * a use that packages or passes the variable consumes the reference,
///     extra uses are paid for with `inc` ahead of time;
///   * a variable that dies without being consumed gets a `dec` at the
///     earliest point on the path where it is no longer live;
///   * `proj` borrows its argument: the result is `inc`ed to become owned
///     and the parent is `dec`ed when dead;
///   * join points own their parameters and their captured variables; a
///     `jmp` transfers ownership of both.
///
/// Leak-freedom and double-free-freedom are verified end-to-end by the
/// differential tests via the runtime's allocation accounting.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_RC_RCINSERT_H
#define LZ_RC_RCINSERT_H

#include "lambda/LambdaIR.h"

namespace lz::rc {

struct RCOptions {
  /// Run Counting-Immutable-Beans-style borrow inference first, so
  /// read-only parameters carry no RC traffic (see Borrow.h). Disable to
  /// get the naive all-owned discipline (used by ablations).
  bool BorrowInference = true;
};

/// Rewrites every function of \p P in place from λpure to λrc. Input must
/// not already contain Inc/Dec nodes.
void insertRC(lambda::Program &P, const RCOptions &Opts = {});

/// True if any Inc/Dec appears in \p F (for test assertions).
bool hasRCOps(const lambda::Function &F);

/// Total number of Inc/Dec statements in \p P (for tests/ablations).
unsigned countRCOps(const lambda::Program &P);

} // namespace lz::rc

#endif // LZ_RC_RCINSERT_H
