//===- Borrow.cpp - borrow inference for reference counting --------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "rc/Borrow.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

using namespace lz;
using namespace lz::lambda;
using namespace lz::rc;

namespace {

/// One demotion sweep over a single function under the current borrow
/// assumptions. Computes the borrowed-local set (derived through Var and
/// Proj from borrowed parameters) on the fly, and records every parameter
/// (function or join) that must be demoted to owned.
class DemotionSweep {
public:
  DemotionSweep(const Function &F, const BorrowInfo &Info) : F(F), Info(Info) {}

  /// Returns the set of consumed vars and fills \p DemotedJoins with join
  /// params that received a non-borrowed argument at some site.
  void run(std::unordered_set<VarId> &ConsumedOut,
           std::unordered_map<JoinId, std::unordered_set<size_t>>
               &DemotedJoinParams) {
    Borrowed.clear();
    Consumed.clear();
    JoinDemotions.clear();
    for (size_t I = 0; I != F.Params.size(); ++I)
      if (Info.fnParamBorrowed(F.Name, I))
        Borrowed.insert(F.Params[I]);
    walk(*F.Body);
    ConsumedOut = std::move(Consumed);
    DemotedJoinParams = std::move(JoinDemotions);
  }

private:
  void consume(VarId V) { Consumed.insert(V); }
  bool isBorrowed(VarId V) const { return Borrowed.count(V) != 0; }

  void walkExpr(VarId Target, const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Ctor:
    case Expr::Kind::PAp:
    case Expr::Kind::VAp:
      for (VarId A : E.Args)
        consume(A);
      return;
    case Expr::Kind::Proj:
    case Expr::Kind::Var:
      // Borrow-neutral; the result inherits borrowedness.
      if (isBorrowed(E.Args[0]))
        Borrowed.insert(Target);
      return;
    case Expr::Kind::FAp:
      for (size_t I = 0; I != E.Args.size(); ++I)
        if (!Info.fnParamBorrowed(E.Callee, I))
          consume(E.Args[I]);
      return;
    case Expr::Kind::Lit:
    case Expr::Kind::BigLit:
      return;
    }
  }

  void walk(const FnBody &B) {
    switch (B.K) {
    case FnBody::Kind::Let:
      walkExpr(B.Var, B.E);
      walk(*B.Next);
      return;
    case FnBody::Kind::JDecl: {
      // Mark borrowed join params before walking the body.
      for (size_t I = 0; I != B.Params.size(); ++I)
        if (Info.joinParamBorrowed(F.Name, B.Join, I))
          Borrowed.insert(B.Params[I]);
      walk(*B.JBody);
      walk(*B.Next);
      return;
    }
    case FnBody::Kind::Case:
      for (const Alt &A : B.Alts)
        walk(*A.Body);
      if (B.Default)
        walk(*B.Default);
      return;
    case FnBody::Kind::Ret:
      consume(B.Var);
      return;
    case FnBody::Kind::Jmp:
      for (size_t I = 0; I != B.Args.size(); ++I) {
        if (!Info.joinParamBorrowed(F.Name, B.Join, I)) {
          consume(B.Args[I]);
          continue;
        }
        // Borrowed join position: sound only when the argument itself is
        // borrowed — a join body never returns control, so nobody could
        // release an owned argument afterwards.
        if (!isBorrowed(B.Args[I]))
          JoinDemotions[B.Join].insert(I);
      }
      return;
    case FnBody::Kind::Inc:
    case FnBody::Kind::Dec:
      walk(*B.Next);
      return;
    case FnBody::Kind::Unreachable:
      return;
    }
  }

  const Function &F;
  const BorrowInfo &Info;
  std::unordered_set<VarId> Borrowed;
  std::unordered_set<VarId> Consumed;
  std::unordered_map<JoinId, std::unordered_set<size_t>> JoinDemotions;
};

/// Closure targets must keep the owned calling convention.
std::unordered_set<std::string> collectPapTargets(const Program &P) {
  std::unordered_set<std::string> Targets;
  std::function<void(const FnBody &)> Walk = [&](const FnBody &B) {
    if (B.K == FnBody::Kind::Let && B.E.K == Expr::Kind::PAp)
      Targets.insert(B.E.Callee);
    if (B.JBody)
      Walk(*B.JBody);
    if (B.Next)
      Walk(*B.Next);
    if (B.Default)
      Walk(*B.Default);
    for (const Alt &A : B.Alts)
      Walk(*A.Body);
  };
  for (const Function &F : P.Functions)
    Walk(*F.Body);
  return Targets;
}

void collectJoinParams(const FnBody &B,
                       std::unordered_map<JoinId, size_t> &ParamCounts) {
  if (B.K == FnBody::Kind::JDecl)
    ParamCounts[B.Join] = B.Params.size();
  if (B.JBody)
    collectJoinParams(*B.JBody, ParamCounts);
  if (B.Next)
    collectJoinParams(*B.Next, ParamCounts);
  if (B.Default)
    collectJoinParams(*B.Default, ParamCounts);
  for (const Alt &A : B.Alts)
    collectJoinParams(*A.Body, ParamCounts);
}

} // namespace

BorrowInfo lz::rc::inferBorrowedParams(const Program &P) {
  BorrowInfo Info;
  std::unordered_set<std::string> PapTargets = collectPapTargets(P);

  // Optimistic initialization.
  for (const Function &F : P.Functions) {
    bool ForceOwned = PapTargets.count(F.Name) != 0;
    Info.Fn[F.Name] = std::vector<bool>(F.Params.size(), !ForceOwned);
    std::unordered_map<JoinId, size_t> JoinParams;
    collectJoinParams(*F.Body, JoinParams);
    for (auto [J, N] : JoinParams)
      Info.Joins[F.Name][J] = std::vector<bool>(N, true);
  }

  // Monotone demotion to the greatest fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Function &F : P.Functions) {
      std::unordered_set<VarId> Consumed;
      std::unordered_map<JoinId, std::unordered_set<size_t>>
          DemotedJoinParams;
      DemotionSweep Sweep(F, Info);
      Sweep.run(Consumed, DemotedJoinParams);

      std::vector<bool> &FnSig = Info.Fn[F.Name];
      for (size_t I = 0; I != F.Params.size(); ++I) {
        if (FnSig[I] && Consumed.count(F.Params[I])) {
          FnSig[I] = false;
          Changed = true;
        }
      }
      auto &JoinSigs = Info.Joins[F.Name];
      for (auto &[J, Sig] : JoinSigs) {
        for (size_t I = 0; I != Sig.size(); ++I) {
          bool Demote = DemotedJoinParams.count(J) &&
                        DemotedJoinParams.at(J).count(I);
          // A join parameter consumed in its own body is owned too.
          // (Its VarId is in Consumed like any other variable.)
          if (Sig[I] && Demote) {
            Sig[I] = false;
            Changed = true;
          }
        }
      }
      // Consumed join params: map VarIds back to signatures.
      std::unordered_map<JoinId, size_t> JoinParamCounts;
      collectJoinParams(*F.Body, JoinParamCounts);
      std::function<void(const FnBody &)> DemoteConsumedParams =
          [&](const FnBody &B) {
            if (B.K == FnBody::Kind::JDecl) {
              std::vector<bool> &Sig = JoinSigs[B.Join];
              for (size_t I = 0; I != B.Params.size(); ++I) {
                if (Sig[I] && Consumed.count(B.Params[I])) {
                  Sig[I] = false;
                  Changed = true;
                }
              }
            }
            if (B.JBody)
              DemoteConsumedParams(*B.JBody);
            if (B.Next)
              DemoteConsumedParams(*B.Next);
            if (B.Default)
              DemoteConsumedParams(*B.Default);
            for (const Alt &A : B.Alts)
              DemoteConsumedParams(*A.Body);
          };
      DemoteConsumedParams(*F.Body);
    }
  }
  return Info;
}
