//===- Driver.h - compile-and-run convenience API ---------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call helpers gluing the whole stack together: MiniLean source ->
/// λpure -> chosen pipeline -> VM, plus the reference interpreter. Used by
/// tests, benchmarks and examples.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_DRIVER_DRIVER_H
#define LZ_DRIVER_DRIVER_H

#include "lower/Pipeline.h"
#include "validate/Eval.h"

#include <string>
#include <string_view>

namespace lz::driver {

/// Result of executing a program (compiled or interpreted).
struct RunResult {
  bool OK = false;
  std::string Error;
  std::string ResultDisplay; ///< rendered return value of the entry point
  std::string Output;        ///< accumulated lean_io_println lines
  uint64_t LiveObjects = 0;  ///< heap cells alive after release (0 = leak-free)
  uint64_t TotalAllocations = 0;
  uint64_t Steps = 0;        ///< VM instructions executed
  unsigned NumOps = 0;       ///< IR ops after lowering (compile-time stat)
  /// Per-site leak blame, (site name, surviving cells), populated when
  /// VMOptions.HeapProfile was on and the run left LiveObjects != 0 —
  /// what turns "leaked N objects" into an actionable report.
  std::vector<std::pair<std::string, uint64_t>> LeakSites;
};

/// Execution knobs for the VM run (as opposed to the compile).
struct VMOptions {
  /// Cap on executed VM instructions; 0 = unlimited. When the budget runs
  /// out the run fails with a "fuel exhausted" error instead of hanging —
  /// the harness wiring for nonterminating miscompiles (DifferentialTest).
  uint64_t FuelLimit = 0;
  /// Attribute heap cells to allocation sites during the VM run (the
  /// pipeline is compiled with site recording, the VM runs instrumented)
  /// and fill RunResult::LeakSites when the run leaks. Also turns on leak
  /// tracking so abandoned cells are reclaimed on trap/fuel unwinds.
  bool HeapProfile = false;
};

/// Parses MiniLean source into \p Out.
bool parseSource(std::string_view Source, lambda::Program &Out,
                 std::string &Error);

/// Compiles \p P with \p Variant and runs \p Entry (a 0-ary function).
RunResult runProgram(const lambda::Program &P, lower::PipelineVariant Variant,
                     std::string_view Entry = "main",
                     const VMOptions &VMOpts = {});

/// As runProgram but with explicit pipeline options (ablations).
RunResult runProgram(const lambda::Program &P,
                     const lower::PipelineOptions &Opts,
                     std::string_view Entry = "main",
                     const VMOptions &VMOpts = {});

/// Runs \p Entry under the reference interpreter (the oracle).
RunResult runOracle(const lambda::Program &P, std::string_view Entry = "main");

/// Result of a translation-validated run: the final VM execution plus the
/// verdict of the per-stage differential (validate/StageValidator.h).
struct ValidatedRunResult {
  /// The end-to-end execution, as runProgram would return it. A trapping
  /// program is observed, not fatal: the VM throws vm::TrapError, the
  /// driver records it in Run.Error, and the trap identity joins the
  /// stage-differential comparison like any evaluator stage's.
  RunResult Run;
  /// True when oracle, every pipeline stage, and the VM all agree.
  bool StagesOK = false;
  /// The agreement summary or full divergence report.
  std::string StageReport;
  unsigned NumStages = 0;
};

/// Compiles \p P with stage validation enabled: the λpure oracle, a
/// post-phase evaluation of every pipeline stage, and the final VM run
/// form one observation chain; the first adjacent pair that disagrees is
/// reported. VMOpts.FuelLimit also caps each per-stage evaluation.
ValidatedRunResult runProgramValidated(const lambda::Program &P,
                                       const lower::PipelineOptions &Opts,
                                       std::string_view Entry = "main",
                                       const VMOptions &VMOpts = {});

/// Convenience: parse + compile + run in one call.
RunResult compileAndRun(std::string_view Source,
                        lower::PipelineVariant Variant,
                        std::string_view Entry = "main");

} // namespace lz::driver

#endif // LZ_DRIVER_DRIVER_H
