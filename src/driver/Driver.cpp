//===- Driver.cpp - compile-and-run convenience API ----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "dialect/Dialects.h"
#include "lambda/Interp.h"
#include "lambda/MiniLean.h"
#include "support/OStream.h"
#include "validate/StageValidator.h"
#include "vm/VM.h"

using namespace lz;
using namespace lz::driver;

bool lz::driver::parseSource(std::string_view Source, lambda::Program &Out,
                             std::string &Error) {
  return succeeded(lambda::parseMiniLean(Source, Out, Error));
}

RunResult lz::driver::runProgram(const lambda::Program &P,
                                 const lower::PipelineOptions &Opts,
                                 std::string_view Entry,
                                 const VMOptions &VMOpts) {
  RunResult R;
  Context Ctx;
  registerAllDialects(Ctx);
  lower::PipelineOptions EffOpts = Opts;
  if (VMOpts.HeapProfile)
    EffOpts.RecordSites = true;
  lower::CompileResult CR = lower::compileProgram(P, Ctx, EffOpts);
  if (!CR.OK) {
    R.Error = CR.Error;
    return R;
  }
  R.NumOps = CR.NumOps;

  rt::Runtime RT;
  StringOStream Out(R.Output);
  vm::VM Machine(CR.Prog, RT, &Out);
  if (VMOpts.FuelLimit)
    Machine.setFuel(VMOpts.FuelLimit);
  if (VMOpts.HeapProfile) {
    // Traps/fuel now unwind instead of aborting, leaving cells live;
    // track them so the Runtime destructor can reclaim (ASan-clean).
    RT.setLeakTracking(true);
    Machine.enableHeapProfiling();
  }
  rt::ObjRef Result = rt::boxScalar(0);
  try {
    Result = Machine.run(Entry, {});
  } catch (const vm::TrapError &T) {
    R.Steps = Machine.getSteps();
    R.Error = "vm: trap: " + T.Message;
    R.LiveObjects = RT.getLiveObjects();
    R.TotalAllocations = RT.getTotalAllocations();
    if (VMOpts.HeapProfile)
      R.LeakSites = RT.collectLeakSites();
    return R;
  }
  R.Steps = Machine.getSteps();
  if (Machine.fuelExhausted()) {
    // Diagnostic failure path: the result is poison and heap cells may
    // still be live (the VM unwound without running the Dec ops).
    R.Error = "vm: fuel exhausted after " + std::to_string(R.Steps) +
              " steps running '" + std::string(Entry) + "'";
    return R;
  }
  R.ResultDisplay = RT.toDisplayString(Result);
  RT.dec(Result);
  R.LiveObjects = RT.getLiveObjects();
  R.TotalAllocations = RT.getTotalAllocations();
  if (VMOpts.HeapProfile && R.LiveObjects != 0)
    R.LeakSites = RT.collectLeakSites();
  R.OK = true;
  return R;
}

RunResult lz::driver::runProgram(const lambda::Program &P,
                                 lower::PipelineVariant Variant,
                                 std::string_view Entry,
                                 const VMOptions &VMOpts) {
  return runProgram(P, lower::PipelineOptions::forVariant(Variant), Entry,
                    VMOpts);
}

ValidatedRunResult lz::driver::runProgramValidated(
    const lambda::Program &P, const lower::PipelineOptions &Opts,
    std::string_view Entry, const VMOptions &VMOpts) {
  ValidatedRunResult VR;
  validate::EvalOptions EO;
  EO.FuelLimit = VMOpts.FuelLimit;
  validate::StageValidator SV(std::string(Entry), EO);

  // Endpoint 0: the λpure reference interpreter. No RC semantics, so the
  // leak comparison is masked for the pair it participates in.
  {
    RunResult O = runOracle(P, Entry);
    validate::Observation Obs;
    Obs.OK = O.OK;
    Obs.ResultDisplay = O.ResultDisplay;
    Obs.Output = O.Output;
    Obs.HasRC = false;
    SV.observeExternal("oracle", Obs);
  }

  lower::PipelineOptions VOpts = Opts;
  VOpts.Validate = &SV;
  if (VMOpts.HeapProfile)
    VOpts.RecordSites = true;

  Context Ctx;
  registerAllDialects(Ctx);
  lower::CompileResult CR = lower::compileProgram(P, Ctx, VOpts);
  if (!CR.OK) {
    VR.Run.Error = CR.Error;
    VR.NumStages = static_cast<unsigned>(SV.getStages().size());
    VR.StageReport = "compile failed: " + CR.Error;
    return VR;
  }
  VR.Run.NumOps = CR.NumOps;

  // Final endpoint: the VM over the emitted bytecode. Trapping programs
  // are observed, not fatal — the Trap opcode throws vm::TrapError, so
  // trap identity is comparable against the evaluator stages.
  {
    rt::Runtime RT;
    // Fuel exhaustion, traps, and bugs this harness exists to find can
    // leave cells live; reclaim them so validation runs stay ASan-clean.
    RT.setLeakTracking(true);
    StringOStream Out(VR.Run.Output);
    vm::VM Machine(CR.Prog, RT, &Out);
    if (VMOpts.FuelLimit)
      Machine.setFuel(VMOpts.FuelLimit);
    if (VMOpts.HeapProfile)
      Machine.enableHeapProfiling();
    validate::Observation Obs;
    bool Trapped = false;
    rt::ObjRef Result = rt::boxScalar(0);
    try {
      Result = Machine.run(Entry, {});
    } catch (const vm::TrapError &T) {
      Trapped = true;
      VR.Run.Steps = Machine.getSteps();
      VR.Run.Error = "vm: trap: " + T.Message;
      VR.Run.LiveObjects = RT.getLiveObjects();
      VR.Run.TotalAllocations = RT.getTotalAllocations();
      if (VMOpts.HeapProfile)
        VR.Run.LeakSites = RT.collectLeakSites();
      Obs.Trap = T.Message;
      Obs.Output = VR.Run.Output;
      Obs.LeakSites = VR.Run.LeakSites;
    }
    if (!Trapped) {
      VR.Run.Steps = Machine.getSteps();
      if (Machine.fuelExhausted()) {
        VR.Run.Error = "vm: fuel exhausted after " +
                       std::to_string(VR.Run.Steps) + " steps running '" +
                       std::string(Entry) + "'";
        Obs.FuelExhausted = true;
      } else {
        VR.Run.ResultDisplay = RT.toDisplayString(Result);
        RT.dec(Result);
        VR.Run.LiveObjects = RT.getLiveObjects();
        VR.Run.TotalAllocations = RT.getTotalAllocations();
        if (VMOpts.HeapProfile && VR.Run.LiveObjects != 0)
          VR.Run.LeakSites = RT.collectLeakSites();
        VR.Run.OK = true;
        Obs.OK = true;
        Obs.ResultDisplay = VR.Run.ResultDisplay;
        Obs.Output = VR.Run.Output;
        Obs.LiveObjects = VR.Run.LiveObjects;
        Obs.TotalAllocations = VR.Run.TotalAllocations;
        Obs.ClosureAllocs = Machine.getClosureAllocs();
        Obs.GenericApplies = Machine.getGenericApplies();
        Obs.Steps = VR.Run.Steps;
        Obs.LeakSites = VR.Run.LeakSites;
      }
    }
    SV.observeExternal("vm", Obs);
  }

  VR.NumStages = static_cast<unsigned>(SV.getStages().size());
  VR.StagesOK = SV.allAgree();
  VR.StageReport = SV.report();
  return VR;
}

RunResult lz::driver::runOracle(const lambda::Program &P,
                                std::string_view Entry) {
  RunResult R;
  lambda::OVal Result =
      lambda::interpret(P, std::string(Entry), {}, R.Output);
  R.ResultDisplay = lambda::displayOValue(Result);
  R.OK = true;
  return R;
}

RunResult lz::driver::compileAndRun(std::string_view Source,
                                    lower::PipelineVariant Variant,
                                    std::string_view Entry) {
  lambda::Program P;
  RunResult R;
  if (!parseSource(Source, P, R.Error))
    return R;
  return runProgram(P, Variant, Entry);
}
