//===- Driver.cpp - compile-and-run convenience API ----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "dialect/Dialects.h"
#include "lambda/Interp.h"
#include "lambda/MiniLean.h"
#include "support/OStream.h"
#include "vm/VM.h"

using namespace lz;
using namespace lz::driver;

bool lz::driver::parseSource(std::string_view Source, lambda::Program &Out,
                             std::string &Error) {
  return succeeded(lambda::parseMiniLean(Source, Out, Error));
}

RunResult lz::driver::runProgram(const lambda::Program &P,
                                 const lower::PipelineOptions &Opts,
                                 std::string_view Entry,
                                 const VMOptions &VMOpts) {
  RunResult R;
  Context Ctx;
  registerAllDialects(Ctx);
  lower::CompileResult CR = lower::compileProgram(P, Ctx, Opts);
  if (!CR.OK) {
    R.Error = CR.Error;
    return R;
  }
  R.NumOps = CR.NumOps;

  rt::Runtime RT;
  StringOStream Out(R.Output);
  vm::VM Machine(CR.Prog, RT, &Out);
  if (VMOpts.FuelLimit)
    Machine.setFuel(VMOpts.FuelLimit);
  rt::ObjRef Result = Machine.run(Entry, {});
  R.Steps = Machine.getSteps();
  if (Machine.fuelExhausted()) {
    // Diagnostic failure path: the result is poison and heap cells may
    // still be live (the VM unwound without running the Dec ops).
    R.Error = "vm: fuel exhausted after " + std::to_string(R.Steps) +
              " steps running '" + std::string(Entry) + "'";
    return R;
  }
  R.ResultDisplay = RT.toDisplayString(Result);
  RT.dec(Result);
  R.LiveObjects = RT.getLiveObjects();
  R.TotalAllocations = RT.getTotalAllocations();
  R.OK = true;
  return R;
}

RunResult lz::driver::runProgram(const lambda::Program &P,
                                 lower::PipelineVariant Variant,
                                 std::string_view Entry,
                                 const VMOptions &VMOpts) {
  return runProgram(P, lower::PipelineOptions::forVariant(Variant), Entry,
                    VMOpts);
}

RunResult lz::driver::runOracle(const lambda::Program &P,
                                std::string_view Entry) {
  RunResult R;
  lambda::OVal Result =
      lambda::interpret(P, std::string(Entry), {}, R.Output);
  R.ResultDisplay = lambda::displayOValue(Result);
  R.OK = true;
  return R;
}

RunResult lz::driver::compileAndRun(std::string_view Source,
                                    lower::PipelineVariant Variant,
                                    std::string_view Entry) {
  lambda::Program P;
  RunResult R;
  if (!parseSource(Source, P, R.Error))
    return R;
  return runProgram(P, Variant, Entry);
}
