//===- StageValidator.h - stage-differential translation validation -*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation over the compilation pipeline: snapshot the
/// module after every phase (via lower::ModuleStageObserver), execute each
/// snapshot with the generic evaluator, and on divergence blame the
/// *first* adjacent stage pair that disagrees — a bisection over stages
/// rather than a "final answer wrong" verdict. External executions with
/// the same observable surface (the λpure oracle, the VM) join the chain
/// as pseudo-stages via observeExternal.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_VALIDATE_STAGEVALIDATOR_H
#define LZ_VALIDATE_STAGEVALIDATOR_H

#include "lower/Pipeline.h"
#include "validate/Eval.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace lz {
class Pass;
}

namespace lz::validate {

/// One observed point of the pipeline: the stage name, the IR as printed
/// at observation time (empty for external endpoints), and what executing
/// it observed.
struct StageRecord {
  std::string Name;
  std::string IRText;
  Observation Obs;
};

/// Compares the stage-invariant observable subset of two executions:
/// trap identity first, then result display, printed output, and live
/// objects (leaks; skipped unless both sides have RC semantics). Fuel
/// exhaustion on either side is inconclusive — eval steps and VM
/// instructions are different units — so such pairs never diverge.
/// Returns a human-readable delta, or the empty string when they agree.
std::string compareObservations(const Observation &A, const Observation &B);

class StageValidator : public lower::ModuleStageObserver {
public:
  explicit StageValidator(std::string Entry = "main", EvalOptions Opts = {});

  /// lower::ModuleStageObserver — snapshots and executes the module.
  void observeStage(std::string_view StageName, Operation *Module) override;

  /// Appends an externally-executed pseudo-stage (oracle, VM) to the
  /// chain; it participates in adjacent-pair comparison like any stage.
  void observeExternal(std::string_view Name, const Observation &Obs);

  const std::vector<StageRecord> &getStages() const { return Stages; }
  const StageRecord *getLastStage() const {
    return Stages.empty() ? nullptr : &Stages.back();
  }

  struct Divergence {
    unsigned BeforeIndex = 0;
    unsigned AfterIndex = 0;
    std::string Delta;
  };

  /// The first adjacent stage pair that disagrees, if any.
  std::optional<Divergence> findDivergence() const;
  bool allAgree() const { return !findDivergence().has_value(); }

  /// Renders either the agreement summary or the full divergence report:
  /// the blamed stage pair, the observable delta, each side's observables,
  /// and both IR snapshots.
  std::string report() const;

private:
  std::string Entry;
  EvalOptions Opts;
  std::vector<StageRecord> Stages;
};

/// Fault injection for testing the validator: a pass that deletes the
/// first lp.dec in the module, manufacturing the classic RC miscompile
/// (a leak) that the stage differential must pin on this pass.
std::unique_ptr<Pass> createDropRCPass();

} // namespace lz::validate

#endif // LZ_VALIDATE_STAGEVALIDATOR_H
