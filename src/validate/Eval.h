//===- Eval.h - generic IR evaluator for translation validation -*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct evaluator over the post-frontend dialect forms — lp, rgn and
/// cf — exposing the same observable surface as the VM (result display,
/// printed output, allocation/RC-leak counters, fuel, traps). Where the VM
/// compiles a module to bytecode first, this executor walks the IR
/// op-by-op, so it can run the module *as it stands after any pipeline
/// phase*: that is what lets StageValidator difference adjacent stages
/// ("The Denotational Semantics of SSA" / "SOS for CFG Machines" in
/// PAPERS.md motivate exactly this per-stage simulation check).
///
/// Semantics intentionally mirror the VM's (vm/VMExecute.inc) bit for bit:
/// the LEAN division conventions, the ±2^62 small-int boxing boundary,
/// raw two's-complement arith, and the runtime's RC discipline. Traps are
/// reported as data (Observation::Trap) so the validator can compare trap
/// identity across stages; the VM matches for unreachable (vm::TrapError)
/// but still aborts the process on arity mismatch / apply of a
/// non-closure, which no well-typed lowering can produce.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_VALIDATE_EVAL_H
#define LZ_VALIDATE_EVAL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lz {
class Operation;
}

namespace lz::validate {

/// Everything observable about one execution of a module. Two stages of a
/// correct pipeline must agree on the comparable subset (see
/// compareObservations in StageValidator.h); the advisory counters are
/// reported but never compared, since optimizations legitimately change
/// them.
struct Observation {
  bool OK = false;          ///< ran to completion (no trap, fuel left)
  std::string Trap;         ///< nonempty = trapped, with this message
  bool FuelExhausted = false;
  std::string ResultDisplay;
  std::string Output;       ///< accumulated lean_io_println lines
  uint64_t LiveObjects = 0; ///< heap cells alive at the end (0 = leak-free)
  uint64_t TotalAllocations = 0;
  /// Advisory counters (never compared): closure cells allocated by
  /// lp.pap, generic applies via lp.papextend, ops executed.
  uint64_t ClosureAllocs = 0;
  uint64_t GenericApplies = 0;
  uint64_t Steps = 0;
  /// Leak provenance (reporting-only, never compared): when the module
  /// carries "lz.site" attributes and the run leaked, the surviving cells'
  /// allocation sites as (site name, count), heaviest first.
  std::vector<std::pair<std::string, uint64_t>> LeakSites;
  /// False for executions with no RC semantics (the λpure oracle), which
  /// masks the LiveObjects comparison against this observation.
  bool HasRC = true;
};

struct EvalOptions {
  /// Cap on evaluated ops; 0 = unlimited. Exhaustion sets FuelExhausted
  /// (inconclusive for validation — eval steps and VM instructions are
  /// different units, so exhaustion is never treated as a divergence).
  uint64_t FuelLimit = 0;
  /// Cap on non-tail call nesting; tail calls (a func.call whose result
  /// immediately feeds the enclosing return) run in constant C++ stack.
  unsigned MaxCallDepth = 1000;
};

/// Executes \p Entry (a 0-ary function) in \p Module, which may be in any
/// post-frontend form: lp, lp+rgn, or flat cf. Never aborts on program
/// errors — traps and fuel exhaustion come back inside the Observation.
Observation evalModule(Operation *Module, std::string_view Entry,
                       const EvalOptions &Opts = {});

} // namespace lz::validate

#endif // LZ_VALIDATE_EVAL_H
