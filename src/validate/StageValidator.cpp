//===- StageValidator.cpp - stage-differential translation validation ----------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "validate/StageValidator.h"

#include "ir/Printer.h"
#include "rewrite/Pass.h"

using namespace lz;
using namespace lz::validate;

std::string lz::validate::compareObservations(const Observation &A,
                                              const Observation &B) {
  if (A.FuelExhausted || B.FuelExhausted)
    return ""; // inconclusive: fuel units differ between executors
  if (A.Trap != B.Trap)
    return "trap: '" + A.Trap + "' vs '" + B.Trap + "'";
  if (!A.Trap.empty())
    return ""; // same trap on both sides — agreeing failure
  if (A.ResultDisplay != B.ResultDisplay)
    return "result: " + A.ResultDisplay + " vs " + B.ResultDisplay;
  if (A.Output != B.Output)
    return "output: \"" + A.Output + "\" vs \"" + B.Output + "\"";
  if (A.HasRC && B.HasRC && A.LiveObjects != B.LiveObjects)
    return "live objects (leaks): " + std::to_string(A.LiveObjects) +
           " vs " + std::to_string(B.LiveObjects);
  return "";
}

StageValidator::StageValidator(std::string Entry, EvalOptions Opts)
    : Entry(std::move(Entry)), Opts(Opts) {}

void StageValidator::observeStage(std::string_view StageName,
                                  Operation *Module) {
  StageRecord R;
  R.Name = std::string(StageName);
  R.IRText = printToString(Module);
  R.Obs = evalModule(Module, Entry, Opts);
  Stages.push_back(std::move(R));
}

void StageValidator::observeExternal(std::string_view Name,
                                     const Observation &Obs) {
  StageRecord R;
  R.Name = std::string(Name);
  R.Obs = Obs;
  Stages.push_back(std::move(R));
}

std::optional<StageValidator::Divergence>
StageValidator::findDivergence() const {
  for (unsigned I = 1; I < Stages.size(); ++I) {
    std::string Delta =
        compareObservations(Stages[I - 1].Obs, Stages[I].Obs);
    if (!Delta.empty())
      return Divergence{I - 1, I, std::move(Delta)};
  }
  return std::nullopt;
}

namespace {
std::string describeObservation(const Observation &O) {
  if (O.FuelExhausted)
    return "fuel exhausted (inconclusive)";
  std::string S;
  if (!O.Trap.empty())
    S = "trap=\"" + O.Trap + "\"";
  else
    S = "result=" + O.ResultDisplay;
  S += " output=\"" + O.Output + "\"";
  if (O.HasRC)
    S += " live=" + std::to_string(O.LiveObjects) +
         " allocs=" + std::to_string(O.TotalAllocations);
  return S;
}
} // namespace

std::string StageValidator::report() const {
  std::optional<Divergence> D = findDivergence();
  if (!D) {
    std::string S = "validate: " + std::to_string(Stages.size()) +
                    " stage(s) agree\n";
    if (const StageRecord *Last = getLastStage()) {
      S += "  entry:  " + Entry + "\n";
      S += "  " + describeObservation(Last->Obs) + "\n";
    }
    return S;
  }

  const StageRecord &Before = Stages[D->BeforeIndex];
  const StageRecord &After = Stages[D->AfterIndex];
  std::string S = "validate: FAIL\n";
  S += "  first divergence: '" + Before.Name + "' -> '" + After.Name +
       "'\n";
  S += "  delta: " + D->Delta + "\n";
  // Leak provenance: when a diverging side left cells behind and the
  // module carried site attributes, blame the allocation sites by name —
  // the difference between "leaked 1 object" and "leaked the ctor cell
  // from main:ctor#0".
  for (const StageRecord *R : {&Before, &After})
    for (const auto &[Site, Count] : R->Obs.LeakSites)
      S += "  leak at '" + R->Name + "': " + std::to_string(Count) +
           " cell(s) from " + Site + "\n";
  S += "  stage '" + Before.Name + "': " + describeObservation(Before.Obs) +
       "\n";
  S += "  stage '" + After.Name + "': " + describeObservation(After.Obs) +
       "\n";
  auto AppendIR = [&S](const StageRecord &R) {
    S += "--- IR at '" + R.Name + "' ---\n";
    S += R.IRText.empty() ? "(external execution: no IR)\n" : R.IRText;
    if (!S.empty() && S.back() != '\n')
      S += '\n';
  };
  AppendIR(Before);
  AppendIR(After);
  return S;
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

namespace {
/// Deletes the first lp.dec in the module: the canonical RC miscompile.
/// Dropping a dec never breaks SSA structure (lp.dec has no results), so
/// the module still verifies — only the stage differential can catch it.
class DropRCPass : public Pass {
public:
  std::string_view getName() const override { return "drop-rc"; }

  LogicalResult run(Operation *Root) override {
    Operation *Victim = nullptr;
    for (unsigned I = 0; I != Root->getNumRegions() && !Victim; ++I)
      Root->getRegion(I).walk([&](Operation *Op) {
        if (!Victim && Op->getName() == "lp.dec")
          Victim = Op;
      });
    if (Victim) {
      Victim->erase();
      ++Dropped;
    }
    return success();
  }

private:
  Statistic Dropped{this, "rc-ops-dropped",
                    "Number of RC operations deleted"};
};
} // namespace

std::unique_ptr<Pass> lz::validate::createDropRCPass() {
  return std::make_unique<DropRCPass>();
}
