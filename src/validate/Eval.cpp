//===- Eval.cpp - generic IR evaluator for translation validation --------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "validate/Eval.h"

#include "dialect/Arith.h"
#include "dialect/Func.h"
#include "dialect/Lp.h"
#include "dialect/Rgn.h"
#include "ir/Module.h"
#include "runtime/Object.h"
#include "support/Casting.h"
#include "support/OStream.h"
#include "vm/Builtins.h"

#include <optional>
#include <unordered_map>
#include <vector>

using namespace lz;
using namespace lz::validate;

namespace {

/// A program-level trap (unreachable, bad projection, arity mismatch...).
/// The VM aborts the process here; the evaluator unwinds to evalModule so
/// the validator can compare trap identity across stages.
struct TrapError {
  std::string Message;
};

/// Fuel exhaustion; distinct from a trap because eval steps and VM
/// instructions are different units (exhaustion is inconclusive, never a
/// divergence).
struct FuelError {};

/// Where control goes after a block finishes. Argument values are captured
/// as raw bits at creation time, which makes every transfer two-phase
/// (read all, then write all) — self-loops rebind safely.
struct Control {
  enum class Kind { Return, Branch, Jump, RunRegion, TailCall };
  Kind K = Kind::Return;
  uint64_t Value = 0;          ///< Return
  Block *Dest = nullptr;       ///< Branch
  std::string_view Label;      ///< Jump (attribute storage outlives us)
  Operation *RegionOp = nullptr; ///< RunRegion: the rgn.val op
  uint32_t FnIndex = 0;        ///< TailCall
  std::vector<uint64_t> Args;
};

/// One function activation's SSA environment. Values are raw 64-bit
/// register images, exactly as in the VM: ObjRefs for boxed types, signed
/// integers for iN, and a rgn.val Operation* for region-typed values.
struct Frame {
  std::unordered_map<Value *, uint64_t> Env;

  uint64_t get(Value *V) const {
    auto It = Env.find(V);
    if (It == Env.end())
      throw TrapError{"use of an undefined SSA value"};
    return It->second;
  }
  void set(Value *V, uint64_t Raw) { Env[V] = Raw; }
};

class Evaluator : public rt::ApplyHandler {
public:
  Evaluator(Operation *Module, const EvalOptions &Opts)
      : Opts(Opts), Out(OutputBuf) {
    RT.setLeakTracking(true);
    for (Operation *Op : *getModuleBody(Module)) {
      if (Op->getName() != "func.func")
        continue;
      if (Op->getNumRegions() == 0 || Op->getRegion(0).empty())
        continue; // declaration: resolved as a builtin at call sites
      FnIndexByName.emplace(func::getFuncName(Op),
                            static_cast<uint32_t>(Functions.size()));
      Functions.push_back(Op);
    }

    // Site provenance: when the module was lowered with RecordSites, its
    // allocating / inc / dec ops carry "lz.site" attributes. Intern them
    // up front (index 0 = the `<runtime>` catch-all, matching the VM's
    // SiteTable) and enable the runtime's site profile, so the evaluator
    // attributes heap traffic exactly like the instrumented VM does.
    std::vector<std::string> Names{"<runtime>"};
    std::unordered_map<std::string_view, int32_t> ByName;
    for (Operation *Fn : Functions) {
      Fn->getRegion(0).walk([&](Operation *Op) {
        auto *A = Op->getAttrOfType<StringAttr>("lz.site");
        if (!A)
          return;
        std::string_view Name = A->getValue();
        auto [It, Inserted] =
            ByName.emplace(Name, static_cast<int32_t>(Names.size()));
        if (Inserted)
          Names.emplace_back(Name);
        SiteOfOp[Op] = It->second;
      });
    }
    if (!SiteOfOp.empty()) {
      RT.enableSiteProfile(std::move(Names));
      SiteProfiling = true;
    }
  }

  Observation run(std::string_view Entry) {
    Observation Obs;
    try {
      auto It = FnIndexByName.find(std::string(Entry));
      if (It == FnIndexByName.end())
        throw TrapError{"entry function '" + std::string(Entry) +
                        "' not found"};
      Operation *Fn = Functions[It->second];
      auto *FnTy = func::getFuncType(Fn);
      if (FnTy->getResults().size() != 1)
        throw TrapError{"entry function must return exactly one value"};
      uint64_t Result = evalFunction(It->second, {});
      if (isa<IntegerType>(FnTy->getResults()[0])) {
        Obs.ResultDisplay =
            std::to_string(static_cast<int64_t>(Result));
      } else {
        Obs.ResultDisplay = RT.toDisplayString(Result);
        RT.dec(Result);
      }
      Obs.OK = true;
    } catch (const TrapError &T) {
      Obs.Trap = T.Message;
    } catch (const FuelError &) {
      Obs.FuelExhausted = true;
    }
    Obs.Output = OutputBuf;
    Obs.LiveObjects = RT.getLiveObjects();
    Obs.TotalAllocations = RT.getTotalAllocations();
    Obs.ClosureAllocs = ClosureAllocs;
    Obs.GenericApplies = GenericApplies;
    Obs.Steps = Steps;
    if (SiteProfiling && Obs.LiveObjects != 0)
      Obs.LeakSites = RT.collectLeakSites();
    return Obs;
  }

  /// rt::ApplyHandler — Runtime::apply re-enters compiled code here.
  rt::ObjRef callFunction(uint32_t FnIndex,
                          std::span<rt::ObjRef> Args) override {
    return evalFunction(FnIndex, {Args.begin(), Args.end()});
  }

private:
  //===------------------------------------------------------------------===//
  // Function / block drivers
  //===------------------------------------------------------------------===//

  uint64_t evalFunction(uint32_t FnIndex, std::vector<uint64_t> Args) {
    if (++CallDepth > Opts.MaxCallDepth) {
      --CallDepth;
      throw TrapError{"call depth limit exceeded"};
    }
    uint64_t Result;
    try {
      // The trampoline: a TailCall control rebinds Fn/Args and loops, so
      // self- and mutual tail recursion run in constant C++ stack — the
      // evaluator analogue of the VM's frame-reusing TailCall opcode.
      for (;;) {
        Operation *Fn = Functions[FnIndex];
        Block *Entry = func::getFuncEntryBlock(Fn);
        if (Args.size() != Entry->getNumArguments())
          throw TrapError{"called '" + std::string(func::getFuncName(Fn)) +
                          "' with " + std::to_string(Args.size()) +
                          " argument(s), expected " +
                          std::to_string(Entry->getNumArguments())};
        Frame F;
        for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
          F.set(Entry->getArgument(I), Args[I]);

        Control C = runBlockAndRegions(F, Entry);
        // Flat-CFG stages branch between sibling blocks of the function
        // body; structured stages never produce Branch.
        while (C.K == Control::Kind::Branch) {
          Block *Dest = C.Dest;
          for (unsigned I = 0; I != Dest->getNumArguments(); ++I)
            F.set(Dest->getArgument(I), C.Args[I]);
          C = runBlockAndRegions(F, Dest);
        }
        if (C.K == Control::Kind::Return) {
          Result = C.Value;
          break;
        }
        if (C.K == Control::Kind::TailCall) {
          FnIndex = C.FnIndex;
          Args = std::move(C.Args);
          continue;
        }
        throw TrapError{"jump to unknown join point '" +
                        std::string(C.Label) + "'"};
      }
    } catch (...) {
      --CallDepth;
      throw;
    }
    --CallDepth;
    return Result;
  }

  /// Runs \p B, then iteratively follows RunRegion transfers (rgn.run is a
  /// terminator, so chained region runs are tail transfers — looping here
  /// keeps rgn-level loops in constant C++ stack).
  Control runBlockAndRegions(Frame &F, Block *B) {
    Control C = evalBlock(F, B);
    while (C.K == Control::Kind::RunRegion) {
      Region &Body = rgn::getValBody(C.RegionOp);
      Block *Entry = Body.getEntryBlock();
      if (C.Args.size() != Entry->getNumArguments())
        throw TrapError{"rgn.run argument count mismatch"};
      for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
        F.set(Entry->getArgument(I), C.Args[I]);
      C = evalBlock(F, Entry);
    }
    return C;
  }

  Control evalBlock(Frame &F, Block *B) {
    for (Operation *Op : *B) {
      ++Steps;
      if (Opts.FuelLimit && Steps > Opts.FuelLimit)
        throw FuelError{};
      std::string_view Name = Op->getName();

      //===--------------------------------------------------------------===//
      // Terminators and control flow
      //===--------------------------------------------------------------===//

      if (Name == "lp.return" || Name == "func.return") {
        if (Op->getNumOperands() != 1)
          throw TrapError{"return must carry exactly one value"};
        Control C;
        C.K = Control::Kind::Return;
        C.Value = F.get(Op->getOperand(0));
        return C;
      }
      if (Name == "lp.unreachable")
        throw TrapError{"executed unreachable code"};
      if (Name == "lp.switch")
        return evalLpSwitch(F, Op);
      if (Name == "lp.joinpoint")
        return evalJoinPoint(F, Op);
      if (Name == "lp.jump") {
        Control C;
        C.K = Control::Kind::Jump;
        C.Label = Op->getAttrOfType<StringAttr>("label")->getValue();
        for (Value *V : Op->getOperands())
          C.Args.push_back(F.get(V));
        return C;
      }
      if (Name == "rgn.run") {
        Control C;
        C.K = Control::Kind::RunRegion;
        // The region operand's dynamic value is a rgn.val op (the
        // verifier's structural constraint: only select/switch/run may
        // touch region values, so nothing else can flow here).
        C.RegionOp =
            reinterpret_cast<Operation *>(F.get(Op->getOperand(0)));
        for (unsigned I = 1; I != Op->getNumOperands(); ++I)
          C.Args.push_back(F.get(Op->getOperand(I)));
        return C;
      }
      if (Name == "cf.br") {
        Control C;
        C.K = Control::Kind::Branch;
        C.Dest = Op->getSuccessor(0);
        for (Value *V : Op->getSuccessorOperands(0))
          C.Args.push_back(F.get(V));
        return C;
      }
      if (Name == "cf.cond_br") {
        unsigned Taken = F.get(Op->getOperand(0)) ? 0 : 1;
        Control C;
        C.K = Control::Kind::Branch;
        C.Dest = Op->getSuccessor(Taken);
        for (Value *V : Op->getSuccessorOperands(Taken))
          C.Args.push_back(F.get(V));
        return C;
      }
      if (Name == "cf.switch") {
        auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
        int64_t Flag = static_cast<int64_t>(F.get(Op->getOperand(0)));
        unsigned Taken = 0; // successor 0 is the default destination
        for (size_t I = 0; I != Cases->size(); ++I) {
          if (static_cast<IntegerAttr *>((*Cases)[I])->getValue() == Flag) {
            Taken = static_cast<unsigned>(I + 1);
            break;
          }
        }
        Control C;
        C.K = Control::Kind::Branch;
        C.Dest = Op->getSuccessor(Taken);
        for (Value *V : Op->getSuccessorOperands(Taken))
          C.Args.push_back(F.get(V));
        return C;
      }
      if (Name == "func.call") {
        if (auto C = evalCall(F, Op))
          return *C;
        continue;
      }

      //===--------------------------------------------------------------===//
      // Value-producing ops
      //===--------------------------------------------------------------===//

      evalValueOp(F, Op, Name);
    }
    throw TrapError{"block fell through without a terminator"};
  }

  Control evalLpSwitch(Frame &F, Operation *Op) {
    auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
    int64_t Tag = static_cast<int64_t>(F.get(Op->getOperand(0)));
    // Region i handles cases[i]; the last region is always @default.
    unsigned RegionIdx = Op->getNumRegions() - 1;
    for (size_t I = 0; I != Cases->size(); ++I) {
      if (static_cast<IntegerAttr *>((*Cases)[I])->getValue() == Tag) {
        RegionIdx = static_cast<unsigned>(I);
        break;
      }
    }
    return runBlockAndRegions(F, Op->getRegion(RegionIdx).getEntryBlock());
  }

  Control evalJoinPoint(Frame &F, Operation *Op) {
    std::string_view Label =
        Op->getAttrOfType<StringAttr>("label")->getValue();
    // Run the pre-jump region; every lp.jump back to this label re-enters
    // the after-jump body — joinpoint loops iterate here instead of
    // recursing (Section III-B's "local, named closures").
    Control C = runBlockAndRegions(
        F, lp::getJoinPointPreRegion(Op).getEntryBlock());
    while (C.K == Control::Kind::Jump && C.Label == Label) {
      Block *Body = lp::getJoinPointBodyRegion(Op).getEntryBlock();
      if (C.Args.size() != Body->getNumArguments())
        throw TrapError{"jump argument count mismatch for join point '" +
                        std::string(Label) + "'"};
      for (unsigned I = 0; I != Body->getNumArguments(); ++I)
        F.set(Body->getArgument(I), C.Args[I]);
      C = runBlockAndRegions(F, Body);
    }
    return C; // Return, TailCall, or a jump to an enclosing join point
  }

  //===------------------------------------------------------------------===//
  // Calls
  //===------------------------------------------------------------------===//

  /// Evaluates func.call. Returns a Control for tail calls (ending the
  /// block), nothing for ordinary calls (result bound, evaluation
  /// continues).
  std::optional<Control> evalCall(Frame &F, Operation *Op) {
    std::string_view Callee =
        Op->getAttrOfType<SymbolRefAttr>("callee")->getValue();
    auto It = FnIndexByName.find(std::string(Callee));

    std::vector<uint64_t> Args;
    Args.reserve(Op->getNumOperands());
    for (Value *V : Op->getOperands())
      Args.push_back(F.get(V));

    if (It != FnIndexByName.end()) {
      // A call whose single result immediately feeds the enclosing return
      // is a tail transfer. This dynamic check subsumes the musttail
      // attribute (markTailCalls runs only before vm-emit, but pre-emit
      // stages contain the same pattern): SSA dominance guarantees no op
      // after the return could use the result, so frame reuse is safe.
      Operation *Next = Op->getNextNode();
      bool IsTail = Op->getNumResults() == 1 && Next &&
                    (Next->getName() == "func.return" ||
                     Next->getName() == "lp.return") &&
                    Next->getNumOperands() == 1 &&
                    Next->getOperand(0) == Op->getResult(0);
      if (IsTail) {
        Control C;
        C.K = Control::Kind::TailCall;
        C.FnIndex = It->second;
        C.Args = std::move(Args);
        return C;
      }
      uint64_t Result = evalFunction(It->second, std::move(Args));
      if (Op->getNumResults() == 1)
        F.set(Op->getResult(0), Result);
      return std::nullopt;
    }

    // Not a module function: the builtin registry (the libleanrt
    // substitute), exactly as the VM's call compilation resolves it.
    int Builtin = vm::lookupBuiltin(Callee);
    if (Builtin < 0)
      throw TrapError{"call to unknown function '" + std::string(Callee) +
                      "'"};
    if (vm::getBuiltinArity(Builtin) != Op->getNumOperands())
      throw TrapError{"builtin '" + std::string(Callee) + "' called with " +
                      std::to_string(Op->getNumOperands()) +
                      " argument(s), expected " +
                      std::to_string(vm::getBuiltinArity(Builtin))};
    vm::BuiltinContext Ctx{RT, *this, &Out};
    // Builtin-internal allocations land on the `<runtime>` catch-all
    // (func.call is never stamped) — don't let a stale site claim them.
    if (SiteProfiling)
      RT.setAllocSite(0);
    rt::ObjRef R = vm::getBuiltin(Builtin)(Ctx, Args);
    if (Op->getNumResults() == 1) {
      uint64_t Raw = R;
      // The VM unboxes builtin results whose IR type is an integer
      // (maybeUnboxResult): e.g. lean_nat_dec_eq used as an i8 flag.
      if (isa<IntegerType>(Op->getResult(0)->getType())) {
        if (!rt::isScalar(R))
          throw TrapError{"builtin result for '" + std::string(Callee) +
                          "' is not a scalar"};
        Raw = static_cast<uint64_t>(rt::unboxScalar(R));
      }
      F.set(Op->getResult(0), Raw);
    }
    return std::nullopt;
  }

  //===------------------------------------------------------------------===//
  // Straight-line value ops (semantics mirror vm/VMExecute.inc)
  //===------------------------------------------------------------------===//

  /// The op's interned SiteId; 0 (`<runtime>`) for unstamped ops.
  int32_t siteOf(Operation *Op) const {
    auto It = SiteOfOp.find(Op);
    return It == SiteOfOp.end() ? 0 : It->second;
  }

  void evalValueOp(Frame &F, Operation *Op, std::string_view Name) {
    auto Operand = [&](unsigned I) { return F.get(Op->getOperand(I)); };
    auto SetResult = [&](uint64_t Raw) { F.set(Op->getResult(0), Raw); };

    // Mirror the instrumented VM: the current allocation site follows the
    // executing op, so unstamped ops (and builtin-internal allocations,
    // whose func.call is never stamped) land on the catch-all slot.
    if (SiteProfiling)
      RT.setAllocSite(siteOf(Op));

    if (Name == "lp.int") {
      int64_t V = Op->getAttrOfType<IntegerAttr>("value")->getValue();
      // Inside ±2^62 the constant is an unboxed scalar; outside, a bignum
      // cell is allocated per execution (the VM's BigConst opcode does
      // the same, so allocation counters stay comparable).
      if (V >= rt::MinSmallInt && V <= rt::MaxSmallInt)
        SetResult(rt::boxScalar(V));
      else
        SetResult(RT.makeBigInt(BigInt(V)));
      return;
    }
    if (Name == "lp.bigint") {
      SetResult(RT.makeBigInt(Op->getAttrOfType<BigIntAttr>("value")->getValue()));
      return;
    }
    if (Name == "lp.construct") {
      int64_t Tag = Op->getAttrOfType<IntegerAttr>("tag")->getValue();
      std::vector<rt::ObjRef> Fields;
      Fields.reserve(Op->getNumOperands());
      for (Value *V : Op->getOperands())
        Fields.push_back(F.get(V));
      SetResult(RT.allocCtor(static_cast<uint8_t>(Tag), Fields));
      return;
    }
    if (Name == "lp.getlabel") {
      SetResult(static_cast<uint64_t>(RT.getTag(Operand(0))));
      return;
    }
    if (Name == "lp.project") {
      uint64_t V = Operand(0);
      int64_t Index = Op->getAttrOfType<IntegerAttr>("index")->getValue();
      if (rt::isScalar(V))
        throw TrapError{"projection of a scalar value"};
      rt::Object *O = rt::asObject(V);
      if (O->Kind != rt::ObjKind::Ctor)
        throw TrapError{"projection of a non-constructor value"};
      if (Index < 0 || Index >= O->NumFields)
        throw TrapError{"projection index " + std::to_string(Index) +
                        " out of bounds"};
      SetResult(RT.getField(V, static_cast<unsigned>(Index))); // borrow
      return;
    }
    if (Name == "lp.pap") {
      std::string_view Callee =
          Op->getAttrOfType<SymbolRefAttr>("callee")->getValue();
      auto It = FnIndexByName.find(std::string(Callee));
      if (It == FnIndexByName.end())
        throw TrapError{"pap of unknown function '" + std::string(Callee) +
                        "'"};
      unsigned Arity =
          func::getFuncEntryBlock(Functions[It->second])->getNumArguments();
      if (Op->getNumOperands() > Arity)
        throw TrapError{"pap over-saturates '" + std::string(Callee) + "'"};
      std::vector<rt::ObjRef> Fixed;
      Fixed.reserve(Op->getNumOperands());
      for (Value *V : Op->getOperands())
        Fixed.push_back(F.get(V));
      ++ClosureAllocs;
      SetResult(RT.allocClosure(It->second, static_cast<uint16_t>(Arity),
                                Fixed));
      return;
    }
    if (Name == "lp.papextend") {
      uint64_t Closure = Operand(0);
      if (rt::isScalar(Closure) ||
          rt::asObject(Closure)->Kind != rt::ObjKind::Closure)
        throw TrapError{"apply of a non-closure value"};
      std::vector<rt::ObjRef> Args;
      for (unsigned I = 1; I != Op->getNumOperands(); ++I)
        Args.push_back(Operand(I));
      ++GenericApplies;
      SetResult(RT.apply(*this, Closure, Args));
      return;
    }
    if (Name == "lp.inc") {
      // Executed RC instructions count (scalar no-ops included), exactly
      // like the VM's per-site Inc/Dec counters.
      if (SiteProfiling)
        RT.noteSiteInc(siteOf(Op));
      RT.inc(Operand(0));
      return;
    }
    if (Name == "lp.dec") {
      if (SiteProfiling)
        RT.noteSiteDec(siteOf(Op));
      RT.dec(Operand(0));
      return;
    }
    if (Name == "rgn.val") {
      SetResult(reinterpret_cast<uint64_t>(Op));
      return;
    }
    if (Name == "arith.constant") {
      SetResult(static_cast<uint64_t>(
          Op->getAttrOfType<IntegerAttr>("value")->getValue()));
      return;
    }
    if (Name == "arith.addi") {
      SetResult(Operand(0) + Operand(1));
      return;
    }
    if (Name == "arith.subi") {
      SetResult(Operand(0) - Operand(1));
      return;
    }
    if (Name == "arith.muli") {
      SetResult(Operand(0) * Operand(1));
      return;
    }
    if (Name == "arith.divsi") {
      // x/0 = 0 (the LEAN convention); divisor -1 via unsigned negation so
      // INT64_MIN / -1 wraps instead of faulting — as in the VM's Div.
      int64_t D = static_cast<int64_t>(Operand(1));
      SetResult(D == 0    ? 0
                : D == -1 ? 0 - Operand(0)
                          : static_cast<uint64_t>(
                                static_cast<int64_t>(Operand(0)) / D));
      return;
    }
    if (Name == "arith.remsi") {
      // x%0 = x; x % -1 = 0 exactly, dodging the INT64_MIN overflow.
      int64_t D = static_cast<int64_t>(Operand(1));
      SetResult(D == 0    ? Operand(0)
                : D == -1 ? 0
                          : static_cast<uint64_t>(
                                static_cast<int64_t>(Operand(0)) % D));
      return;
    }
    if (Name == "arith.andi") {
      SetResult(Operand(0) & Operand(1));
      return;
    }
    if (Name == "arith.ori") {
      SetResult(Operand(0) | Operand(1));
      return;
    }
    if (Name == "arith.xori") {
      SetResult(Operand(0) ^ Operand(1));
      return;
    }
    if (Name == "arith.cmpi") {
      auto Pred = static_cast<arith::CmpPredicate>(
          Op->getAttrOfType<IntegerAttr>("predicate")->getValue());
      uint64_t A = Operand(0), B = Operand(1);
      int64_t SA = static_cast<int64_t>(A), SB = static_cast<int64_t>(B);
      bool R = false;
      switch (Pred) {
      case arith::CmpPredicate::EQ:
        R = A == B;
        break;
      case arith::CmpPredicate::NE:
        R = A != B;
        break;
      case arith::CmpPredicate::SLT:
        R = SA < SB;
        break;
      case arith::CmpPredicate::SLE:
        R = SA <= SB;
        break;
      case arith::CmpPredicate::SGT:
        R = SA > SB;
        break;
      case arith::CmpPredicate::SGE:
        R = SA >= SB;
        break;
      }
      SetResult(R ? 1 : 0);
      return;
    }
    if (Name == "arith.select") {
      SetResult(Operand(0) ? Operand(1) : Operand(2));
      return;
    }
    if (Name == "arith.switch") {
      auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
      int64_t Flag = static_cast<int64_t>(Operand(0));
      // Operands: flag, one value per case, then the default value.
      uint64_t Picked = Operand(Op->getNumOperands() - 1);
      for (size_t I = 0; I != Cases->size(); ++I) {
        if (static_cast<IntegerAttr *>((*Cases)[I])->getValue() == Flag) {
          Picked = Operand(static_cast<unsigned>(I + 1));
          break;
        }
      }
      SetResult(Picked);
      return;
    }
    throw TrapError{"unsupported op '" + std::string(Name) +
                    "' in stage evaluator"};
  }

  EvalOptions Opts;
  rt::Runtime RT;
  std::string OutputBuf;
  StringOStream Out;
  std::vector<Operation *> Functions;
  std::unordered_map<std::string, uint32_t> FnIndexByName;
  /// "lz.site"-stamped ops -> interned SiteId (empty = no provenance).
  std::unordered_map<Operation *, int32_t> SiteOfOp;
  bool SiteProfiling = false;
  uint64_t Steps = 0;
  uint64_t ClosureAllocs = 0;
  uint64_t GenericApplies = 0;
  unsigned CallDepth = 0;
};

} // namespace

Observation lz::validate::evalModule(Operation *Module,
                                     std::string_view Entry,
                                     const EvalOptions &Opts) {
  Evaluator E(Module, Opts);
  return E.run(Entry);
}
