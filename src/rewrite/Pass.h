//===- Pass.h - pass manager, instrumentation, statistics -------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass-manager subsystem in the MLIR mold. Beyond running passes over
/// a root op with inter-pass verification, the manager supports:
///
///   * PassInstrumentation — runBeforePass / runAfterPass /
///     runAfterPassFailed callbacks around every pass execution;
///   * per-pass Statistic counters, printable as an `-mlir-pass-statistics`
///     style report and mergeable into a StatisticsReport that survives the
///     manager (the pipeline aggregates per-compile stats through this);
///   * wall-clock timing of each pass (and the inter-pass verifier) into a
///     caller-supplied Timer tree (see support/Timing.h) — the
///     `-mlir-timing` analogue;
///   * IR snapshot printing before/after selected passes or all passes —
///     `--print-ir-before/-after/-after-all`.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_REWRITE_PASS_H
#define LZ_REWRITE_PASS_H

#include "analysis/AnalysisManager.h"
#include "obs/Remark.h"
#include "support/LogicalResult.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lz {

class OStream;
class Operation;
class Pass;
class Timer;

namespace obs {
class TraceSink;
}

/// A named counter owned by a pass. Declare as a member and it registers
/// itself with the owning pass; values accumulate across runs (a reused
/// pass object keeps counting) and are only cleared explicitly.
class Statistic {
public:
  Statistic(Pass *Owner, std::string_view Name, std::string_view Desc);

  Statistic &operator+=(uint64_t N) {
    Value += N;
    return *this;
  }
  Statistic &operator++() {
    ++Value;
    return *this;
  }

  uint64_t getValue() const { return Value; }
  std::string_view getName() const { return Name; }
  std::string_view getDesc() const { return Desc; }
  void reset() { Value = 0; }

private:
  std::string Name;
  std::string Desc;
  uint64_t Value = 0;
};

/// A unit of IR transformation.
///
/// Analyses: inside run(), getAnalysis<T>() returns the cached analysis of
/// the root op (constructing it on first request), getCachedAnalysis<T>()
/// queries without constructing. By default every analysis is invalidated
/// after the pass; a pass that left the relevant IR structure intact calls
/// markAllAnalysesPreserved() (no IR change at all) or
/// markAnalysisPreserved<T>() (e.g. CSE erases ops but never touches block
/// structure, so dominance survives it).
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string_view getName() const = 0;
  virtual LogicalResult run(Operation *Root) = 0;

  /// The statistics registered by this pass's Statistic members.
  const std::vector<Statistic *> &getStatistics() const { return Statistics; }

protected:
  /// The cached analysis of the pass's current root op, constructed on
  /// first request. Only callable while run() executes under a PassManager.
  template <typename T> T &getAnalysis() {
    assert(CurrentAM && "getAnalysis outside a PassManager-driven run");
    return CurrentAM->getAnalysis<T>(CurrentRoot);
  }
  /// The cached analysis if present, else null (never constructs).
  template <typename T> T *getCachedAnalysis() {
    assert(CurrentAM && "getCachedAnalysis outside a PassManager-driven run");
    return CurrentAM->getCachedAnalysis<T>(CurrentRoot);
  }
  /// Declares that this run left all analyses valid (the pass did not
  /// mutate the IR).
  void markAllAnalysesPreserved() { Preserved.preserveAll(); }
  /// Declares that this run left analysis \p T valid.
  template <typename T> void markAnalysisPreserved() {
    Preserved.preserve<T>();
  }

  /// The remark engine of the driving PassManager, or null when remarks
  /// are off. Guard remark construction on this pointer so the off path
  /// builds no strings:
  ///
  ///   if (getRemarkEngine())
  ///     emitRemark(obs::RemarkKind::Applied, "Inlined", Call,
  ///                "inlined call to @" + Callee);
  obs::RemarkEngine *getRemarkEngine() const { return CurrentRemarks; }

  /// Emits an optimization remark attributed to this pass and to the
  /// function enclosing \p ContextOp (walks parents to the nearest
  /// func.func; ContextOp may itself be the func, or null for a
  /// module-level remark). No-op without an engine.
  void emitRemark(obs::RemarkKind Kind, std::string_view RemarkName,
                  Operation *ContextOp, std::string Message,
                  std::vector<std::pair<std::string, std::string>> Args = {});

private:
  friend class Statistic;
  friend class PassManager;
  std::vector<Statistic *> Statistics;
  AnalysisManager *CurrentAM = nullptr;
  Operation *CurrentRoot = nullptr;
  obs::RemarkEngine *CurrentRemarks = nullptr;
  PreservedAnalyses Preserved;
};

/// Observer of pass execution. Instrumentations are invoked in registration
/// order before each pass and in reverse registration order after it (so
/// nesting instrumentations pair up like scopes).
class PassInstrumentation {
public:
  virtual ~PassInstrumentation();
  virtual void runBeforePass(Pass & /*P*/, Operation * /*Root*/) {}
  virtual void runAfterPass(Pass & /*P*/, Operation * /*Root*/) {}
  virtual void runAfterPassFailed(Pass & /*P*/, Operation * /*Root*/) {}
};

/// Configuration for IR snapshot printing around passes.
struct IRPrintConfig {
  bool BeforeAll = false;
  bool AfterAll = false;
  /// Pass names to snapshot before/after (exact match on Pass::getName).
  std::vector<std::string> Before;
  std::vector<std::string> After;
  /// Destination; when null the snapshots go to errs().
  OStream *OS = nullptr;
};

/// Creates the instrumentation implementing IRPrintConfig. Snapshots are
/// printed with `// -----// IR Dump After <pass> //----- //` headers
/// (before-dumps and failure-dumps say so in the header).
std::unique_ptr<PassInstrumentation>
createIRPrinterInstrumentation(IRPrintConfig Config);

/// Creates an instrumentation that times each pass as an aggregated child
/// of \p Parent. Two runs of `canonicalize` under the same parent fold
/// into one timer with count 2.
std::unique_ptr<PassInstrumentation> createTimingInstrumentation(Timer &Parent);

/// Aggregated (pass name, statistic name) -> value rows, merged from one or
/// more pass managers. Unlike the statistics living on pass objects, a
/// report outlives the manager, so per-compile pipelines can accumulate
/// into a caller-owned report across many compiles.
class StatisticsReport {
public:
  struct Row {
    std::string PassName;
    std::string StatName;
    std::string Desc;
    uint64_t Value = 0;
  };

  /// Adds \p Value into the row keyed (PassName, StatName), creating it on
  /// first use. Row order is first-merge order (deterministic reports).
  void add(std::string_view PassName, std::string_view StatName,
           std::string_view Desc, uint64_t Value);

  const std::vector<Row> &getRows() const { return Rows; }

  /// Prints the same `(S) <value> <name> - <desc>` shape as
  /// PassManager::printStatistics.
  void print(OStream &OS) const;

private:
  std::vector<Row> Rows;
};

/// Runs a pipeline of passes with inter-pass verification and optional
/// instrumentation.
class PassManager {
public:
  PassManager();
  ~PassManager();

  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// When disabled, skips the verifier between passes (benchmarking).
  void setVerifyEach(bool Enable) { VerifyEach = Enable; }

  /// Registers \p PI; see PassInstrumentation for invocation order.
  void addInstrumentation(std::unique_ptr<PassInstrumentation> PI);

  /// Times every pass as a child of \p Parent; the inter-pass verifier is
  /// attributed to a "(verify)" child and analysis constructions to an
  /// "(analysis)" child, so pass rows stay honest.
  void enableTiming(Timer &Parent);

  /// Opens a trace span per pass execution in \p Sink under \p Category,
  /// plus spans for the inter-pass verifier ("(verify)") and analysis
  /// constructions (via the AnalysisManager hook).
  void enableTracing(obs::TraceSink &Sink, std::string Category);

  /// Routes Pass::emitRemark of every pass this manager runs to \p E
  /// (null disables; the default).
  void setRemarkEngine(obs::RemarkEngine *E) { Remarks = E; }

  /// The analysis cache shared by this manager's passes and its inter-pass
  /// verifier. Valid for the manager's lifetime; cleared by IR-mutating
  /// passes per their PreservedAnalyses declarations.
  AnalysisManager &getAnalysisManager() { return AM; }

  /// Prints IR snapshots around passes per \p Config.
  void enableIRPrinting(IRPrintConfig Config);

  /// Runs all passes over \p Root; stops at the first failure.
  LogicalResult run(Operation *Root);

  const std::vector<std::unique_ptr<Pass>> &getPasses() const {
    return Passes;
  }

  /// Names of passes that ran (for testing/reporting).
  const std::vector<std::string> &getRanPasses() const { return RanPasses; }

  /// Adds every pass's statistics into \p Report, merging same-named passes
  /// (the standard pipeline runs canonicalize twice), followed by the
  /// analysis cache hit/miss counters under the "(analysis)" pseudo-pass.
  /// Call once per manager lifetime or deltas will double-count.
  void mergeStatisticsInto(StatisticsReport &Report) const;

  /// Prints an MLIR-style `-pass-statistics` report over this manager's
  /// passes (same-named passes merged):
  ///
  ///   ===----------------------------------------------------------===
  ///                  ... Pass statistics report ...
  ///   ===----------------------------------------------------------===
  ///   canonicalize
  ///     (S)       12 patterns-applied - Number of rewrite patterns applied
  void printStatistics(OStream &OS) const;

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<std::unique_ptr<PassInstrumentation>> Instrumentations;
  std::vector<std::string> RanPasses;
  AnalysisManager AM;
  Timer *TimingParent = nullptr;
  obs::TraceSink *Trace = nullptr;
  obs::RemarkEngine *Remarks = nullptr;
  bool VerifyEach = true;
};

/// Creates an instrumentation that opens a span in \p Sink around each
/// pass execution, named after the pass under category \p Category.
std::unique_ptr<PassInstrumentation>
createTracingInstrumentation(obs::TraceSink &Sink, std::string Category);

} // namespace lz

#endif // LZ_REWRITE_PASS_H
