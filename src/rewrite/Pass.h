//===- Pass.h - pass and pass manager ---------------------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal pass manager in the MLIR mold: passes run over a root op
/// (normally the module), and the manager re-verifies the IR after each
/// pass so a broken transformation is caught at its source.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_REWRITE_PASS_H
#define LZ_REWRITE_PASS_H

#include "support/LogicalResult.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lz {

class Operation;

/// A unit of IR transformation.
class Pass {
public:
  virtual ~Pass() = default;
  virtual std::string_view getName() const = 0;
  virtual LogicalResult run(Operation *Root) = 0;
};

/// Runs a pipeline of passes with inter-pass verification.
class PassManager {
public:
  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// When disabled, skips the verifier between passes (benchmarking).
  void setVerifyEach(bool Enable) { VerifyEach = Enable; }

  /// Runs all passes over \p Root; stops at the first failure.
  LogicalResult run(Operation *Root);

  /// Names of passes that ran (for testing/reporting).
  const std::vector<std::string> &getRanPasses() const { return RanPasses; }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<std::string> RanPasses;
  bool VerifyEach = true;
};

} // namespace lz

#endif // LZ_REWRITE_PASS_H
