//===- Pass.cpp - pass manager, instrumentation, statistics -------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Pass.h"

#include "analysis/Dominance.h"
#include "dialect/Func.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "obs/Trace.h"
#include "support/OStream.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdio>

using namespace lz;

//===----------------------------------------------------------------------===//
// Statistic
//===----------------------------------------------------------------------===//

Statistic::Statistic(Pass *Owner, std::string_view Name, std::string_view Desc)
    : Name(Name), Desc(Desc) {
  Owner->Statistics.push_back(this);
}

//===----------------------------------------------------------------------===//
// Pass remarks
//===----------------------------------------------------------------------===//

void Pass::emitRemark(obs::RemarkKind Kind, std::string_view RemarkName,
                      Operation *ContextOp, std::string Message,
                      std::vector<std::pair<std::string, std::string>> Args) {
  if (!CurrentRemarks)
    return;
  obs::Remark R;
  R.Pass = std::string(getName());
  R.Kind = Kind;
  R.RemarkName = std::string(RemarkName);
  // The IR has no source locations; remarks attribute to the enclosing
  // function symbol instead.
  for (Operation *Op = ContextOp; Op; Op = Op->getParentOp()) {
    if (Op->getName() == "func.func") {
      R.Function = std::string(func::getFuncName(Op));
      break;
    }
  }
  R.Message = std::move(Message);
  R.Args = std::move(Args);
  CurrentRemarks->report(std::move(R));
}

//===----------------------------------------------------------------------===//
// PassInstrumentation implementations
//===----------------------------------------------------------------------===//

PassInstrumentation::~PassInstrumentation() = default;

namespace {

/// Prints IR snapshots around passes per an IRPrintConfig.
class IRPrinterInstrumentation : public PassInstrumentation {
public:
  explicit IRPrinterInstrumentation(IRPrintConfig Config)
      : Config(std::move(Config)) {}

  void runBeforePass(Pass &P, Operation *Root) override {
    if (Config.BeforeAll || listed(Config.Before, P.getName()))
      dump("IR Dump Before ", P.getName(), Root);
  }
  void runAfterPass(Pass &P, Operation *Root) override {
    if (Config.AfterAll || listed(Config.After, P.getName()))
      dump("IR Dump After ", P.getName(), Root);
  }
  void runAfterPassFailed(Pass &P, Operation *Root) override {
    if (Config.AfterAll || listed(Config.After, P.getName()))
      dump("IR Dump After (failed) ", P.getName(), Root);
  }

private:
  static bool listed(const std::vector<std::string> &Names,
                     std::string_view Name) {
    return std::find(Names.begin(), Names.end(), Name) != Names.end();
  }

  void dump(std::string_view Header, std::string_view PassName,
            Operation *Root) {
    OStream &OS = Config.OS ? *Config.OS : errs();
    OS << "// -----// " << Header << PassName << " //----- //\n";
    printOp(Root, OS);
    OS.flush();
  }

  IRPrintConfig Config;
};

/// Times each pass as an aggregated child of a parent timer. Passes run
/// strictly sequentially, so a stack of open scopes suffices (and pairs
/// correctly even if a pass manager were nested inside a pass).
class TimingInstrumentation : public PassInstrumentation {
public:
  explicit TimingInstrumentation(Timer &Parent) : Parent(Parent) {}

  void runBeforePass(Pass &P, Operation *) override {
    Open.emplace_back(&Parent.getOrCreateChild(P.getName()));
  }
  void runAfterPass(Pass &, Operation *) override { pop(); }
  void runAfterPassFailed(Pass &, Operation *) override { pop(); }

private:
  void pop() {
    if (!Open.empty())
      Open.pop_back(); // ~TimingScope records the interval
  }

  Timer &Parent;
  std::vector<TimingScope> Open;
};

/// Opens a trace span per pass execution. Same stack discipline as
/// TimingInstrumentation: passes run sequentially, so open spans pair up.
class TracingInstrumentation : public PassInstrumentation {
public:
  TracingInstrumentation(obs::TraceSink &Sink, std::string Category)
      : Sink(Sink), Category(std::move(Category)) {}

  void runBeforePass(Pass &P, Operation *) override {
    Open.emplace_back(&Sink, std::string(P.getName()), Category);
  }
  void runAfterPass(Pass &, Operation *) override { pop(); }
  void runAfterPassFailed(Pass &P, Operation *) override {
    if (!Open.empty())
      Open.back().arg("failed", "true");
    pop();
    (void)P;
  }

private:
  void pop() {
    if (!Open.empty())
      Open.pop_back(); // ~TraceSpan records the finished span
  }

  obs::TraceSink &Sink;
  std::string Category;
  std::vector<obs::TraceSpan> Open;
};

} // namespace

std::unique_ptr<PassInstrumentation>
lz::createIRPrinterInstrumentation(IRPrintConfig Config) {
  return std::make_unique<IRPrinterInstrumentation>(std::move(Config));
}

std::unique_ptr<PassInstrumentation>
lz::createTimingInstrumentation(Timer &Parent) {
  return std::make_unique<TimingInstrumentation>(Parent);
}

std::unique_ptr<PassInstrumentation>
lz::createTracingInstrumentation(obs::TraceSink &Sink, std::string Category) {
  return std::make_unique<TracingInstrumentation>(Sink, std::move(Category));
}

//===----------------------------------------------------------------------===//
// StatisticsReport
//===----------------------------------------------------------------------===//

void StatisticsReport::add(std::string_view PassName, std::string_view StatName,
                           std::string_view Desc, uint64_t Value) {
  for (Row &R : Rows) {
    if (R.PassName == PassName && R.StatName == StatName) {
      R.Value += Value;
      return;
    }
  }
  Rows.push_back(
      {std::string(PassName), std::string(StatName), std::string(Desc), Value});
}

namespace {

const char *const ReportBar =
    "===------------------------------------------------------------------"
    "----===\n";

/// Prints rows grouped by pass name, preserving row order within a group.
void printStatRows(OStream &OS, const std::vector<StatisticsReport::Row> &Rows) {
  OS << ReportBar;
  OS << "                         ... Pass statistics report ...\n";
  OS << ReportBar;
  std::vector<bool> Printed(Rows.size(), false);
  for (size_t I = 0; I != Rows.size(); ++I) {
    if (Printed[I])
      continue;
    OS << Rows[I].PassName << '\n';
    for (size_t J = I; J != Rows.size(); ++J) {
      if (Printed[J] || Rows[J].PassName != Rows[I].PassName)
        continue;
      Printed[J] = true;
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "  (S) %8llu ",
                    static_cast<unsigned long long>(Rows[J].Value));
      OS << Buf << Rows[J].StatName << " - " << Rows[J].Desc << '\n';
    }
  }
}

} // namespace

void StatisticsReport::print(OStream &OS) const { printStatRows(OS, Rows); }

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

PassManager::PassManager() = default;
PassManager::~PassManager() = default;

void PassManager::addInstrumentation(std::unique_ptr<PassInstrumentation> PI) {
  Instrumentations.push_back(std::move(PI));
}

void PassManager::enableTiming(Timer &Parent) {
  TimingParent = &Parent;
  AM.enableTiming(Parent);
  addInstrumentation(createTimingInstrumentation(Parent));
}

void PassManager::enableTracing(obs::TraceSink &Sink, std::string Category) {
  Trace = &Sink;
  AM.enableTracing(Sink);
  addInstrumentation(createTracingInstrumentation(Sink, std::move(Category)));
}

void PassManager::enableIRPrinting(IRPrintConfig Config) {
  addInstrumentation(createIRPrinterInstrumentation(std::move(Config)));
}

void PassManager::mergeStatisticsInto(StatisticsReport &Report) const {
  for (const auto &P : Passes)
    for (const Statistic *S : P->getStatistics())
      Report.add(P->getName(), S->getName(), S->getDesc(), S->getValue());
  for (const AnalysisManager::CacheCounter &C : AM.getCacheCounters()) {
    Report.add("(analysis)", C.Name + "-cache-hits",
               "Analysis cache hits", C.Hits);
    Report.add("(analysis)", C.Name + "-cache-misses",
               "Analysis cache misses (constructions)", C.Misses);
  }
}

void PassManager::printStatistics(OStream &OS) const {
  StatisticsReport Report;
  mergeStatisticsInto(Report);
  Report.print(OS);
}

LogicalResult PassManager::run(Operation *Root) {
  RanPasses.clear();
  // Anything cached by a previous run is untrustworthy: the caller may
  // have mutated the IR (or freed and reallocated regions at recycled
  // addresses) between runs. Caching pays off across the passes WITHIN a
  // run; across runs it would be unsound. Counters survive the clear.
  AM.clear();

  // The inter-pass verifier gets its own timing row so pass times stay
  // honest under --pass-timing, and shares the analysis manager's cached
  // dominator trees with the passes around it. The analysis is fetched
  // BEFORE the "(verify)" scope opens so a cold-cache dominance build is
  // attributed to the "(analysis)" row only, not double-counted here.
  auto VerifyTimed = [&]() -> LogicalResult {
    DominanceAnalysis &Dom = AM.getAnalysis<DominanceAnalysis>(Root);
    TimingScope S(TimingParent ? &TimingParent->getOrCreateChild("(verify)")
                               : nullptr);
    obs::TraceSpan TS(Trace, "(verify)", "verify");
    return verify(Root, &Dom);
  };

  if (VerifyEach && failed(VerifyTimed())) {
    errs() << "pass manager: IR invalid before pipeline\n";
    return failure();
  }
  for (auto &P : Passes) {
    P->CurrentAM = &AM;
    P->CurrentRoot = Root;
    P->CurrentRemarks = Remarks;
    P->Preserved.clear();
    for (auto &PI : Instrumentations)
      PI->runBeforePass(*P, Root);
    LogicalResult PassResult = P->run(Root);
    P->CurrentAM = nullptr;
    P->CurrentRoot = nullptr;
    P->CurrentRemarks = nullptr;
    if (failed(PassResult)) {
      for (auto It = Instrumentations.rbegin(); It != Instrumentations.rend();
           ++It)
        (*It)->runAfterPassFailed(*P, Root);
      errs() << "pass '" << P->getName() << "' failed\n";
      AM.clear(); // the IR state after a failed pass is unknown
      return failure();
    }
    for (auto It = Instrumentations.rbegin(); It != Instrumentations.rend();
         ++It)
      (*It)->runAfterPass(*P, Root);
    RanPasses.emplace_back(P->getName());
    // Invalidate before verifying: the verifier must not consult trees the
    // pass declared stale.
    AM.invalidateAll(P->Preserved);
    if (VerifyEach && failed(VerifyTimed())) {
      errs() << "pass '" << P->getName() << "' produced invalid IR\n";
      return failure();
    }
  }
  return success();
}
