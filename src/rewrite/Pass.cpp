//===- Pass.cpp - pass and pass manager ---------------------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Pass.h"

#include "ir/Verifier.h"
#include "support/OStream.h"

using namespace lz;

LogicalResult PassManager::run(Operation *Root) {
  RanPasses.clear();
  if (VerifyEach && failed(verify(Root))) {
    errs() << "pass manager: IR invalid before pipeline\n";
    return failure();
  }
  for (auto &P : Passes) {
    if (failed(P->run(Root))) {
      errs() << "pass '" << P->getName() << "' failed\n";
      return failure();
    }
    RanPasses.emplace_back(P->getName());
    if (VerifyEach && failed(verify(Root))) {
      errs() << "pass '" << P->getName() << "' produced invalid IR\n";
      return failure();
    }
  }
  return success();
}
