//===- Passes.h - the standard pass set -------------------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the passes the paper uses (Figure 11's "MLIR builtin"
/// rows plus the rgn-specific extensions):
///
///   * Canonicalizer — folds + canonicalization patterns to fixpoint;
///     with the rgn patterns registered this performs the paper's Case
///     Elimination and the select-folding steps of Section IV-B.
///   * CSE — dominance-scoped common subexpression elimination extended
///     with Global Region Numbering, so identical rgn.val regions merge
///     (Common Branch Elimination).
///   * DCE — deletes unused pure/allocating ops (Dead Region / Dead
///     Expression Elimination) and unreachable blocks.
///   * Inliner — inlines small non-recursive straight-line callees,
///     bottom-up over the cached CallGraph analysis.
///   * SCCP — Wegman–Zadeck sparse conditional constant propagation over
///     the flat CFG (the first client built on the analysis framework).
///
/// plus the closure-optimization passes over the lp dialect (implemented
/// in src/transform/, backed by the ClosureAnalysis):
///
///   * Devirtualize — rewrites saturated non-escaping lp.pap/lp.papextend
///     chains into direct func.calls, deleting the closure allocations and
///     their RC traffic.
///   * ArityRaise — uncurries call+papextend over-applications through
///     synthesized n-ary wrapper functions.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_REWRITE_PASSES_H
#define LZ_REWRITE_PASSES_H

#include "rewrite/Pass.h"

#include <memory>

namespace lz {

class PatternSet;

/// Canonicalizer over the whole module: collects every registered op's
/// canonicalization patterns plus \p Extra (may be null).
std::unique_ptr<Pass> createCanonicalizerPass();

/// Adds the rgn-dialect rewrite patterns (run-of-known-region inlining) to
/// \p Patterns; exposed for ablation studies.
void populateRgnPatterns(PatternSet &Patterns);

/// Dominance-scoped CSE with structural region numbering. Reuses the
/// AnalysisManager-cached DominanceAnalysis and preserves it (CSE never
/// changes block structure).
std::unique_ptr<Pass> createCSEPass();

/// Wegman–Zadeck sparse conditional constant propagation over the CFG
/// dialect: constant lattice + executable-edge worklist, folds constant
/// arith ops, rewrites conditional branches on constants and deletes
/// never-executed blocks.
std::unique_ptr<Pass> createSCCPPass();

/// Dead code elimination (iterative) + unreachable block removal.
std::unique_ptr<Pass> createDCEPass();

/// Inlines calls to small single-block non-recursive functions.
std::unique_ptr<Pass> createInlinerPass(unsigned MaxCalleeOps = 16);

/// Known-call devirtualization: saturated local pap chains become direct
/// func.calls; the dead closure allocations (and their lp.inc/lp.dec
/// traffic) are deleted. Runs on lp-form modules.
std::unique_ptr<Pass> createDevirtualizePass();

/// Arity raising / uncurrying: for functions whose every return yields an
/// under-applied closure of a known callee, over-applying call sites are
/// fused into one call of a synthesized n-ary wrapper. Runs on lp-form
/// modules, before devirtualization.
std::unique_ptr<Pass> createArityRaisePass();

} // namespace lz

#endif // LZ_REWRITE_PASSES_H
