//===- Pattern.cpp - rewrite patterns and the greedy driver ------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Pattern.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace lz;

//===----------------------------------------------------------------------===//
// PatternRewriter
//===----------------------------------------------------------------------===//

void PatternRewriter::replaceOp(Operation *Op,
                                std::span<Value *const> NewValues) {
  assert(NewValues.size() == Op->getNumResults() &&
         "replacement value count mismatch");
  for (unsigned I = 0; I != Op->getNumResults(); ++I)
    replaceAllUsesWith(Op->getResult(I), NewValues[I]);
  eraseOp(Op);
}

void PatternRewriter::eraseOp(Operation *Op) {
  assert(Op->use_empty() && "erasing op with live uses");
  if (Listener) {
    // Notify for nested ops as well, so worklists drop them.
    Op->walk([&](Operation *Nested) { Listener->notifyErased(Nested); });
  }
  Op->erase();
}

void PatternRewriter::replaceAllUsesWith(Value *From, Value *To) {
  if (Listener) {
    for (OpOperand *U = From->getFirstUse(); U; U = U->getNextUse())
      Listener->notifyChanged(U->getOwner());
  }
  From->replaceAllUsesWith(To);
}

//===----------------------------------------------------------------------===//
// Folding
//===----------------------------------------------------------------------===//

LogicalResult lz::tryFold(Operation *Op, PatternRewriter &Rewriter) {
  const OpDef &Def = Op->getDef();
  if (!Def.Fold || Op->getNumResults() == 0 || Op->isTerminator())
    return failure();

  std::vector<FoldResult> Results;
  if (failed(Def.Fold(Op, Results)))
    return failure();
  assert(Results.size() == Op->getNumResults() && "fold arity mismatch");

  // A ConstantLike op folding to its own value attribute is a no-op signal
  // (used by CSE-style deduplication elsewhere).
  if (Op->hasTrait(OpTrait_ConstantLike))
    return failure();

  // Materialize attribute results as constants right before Op.
  std::vector<Value *> Replacements;
  Replacements.reserve(Results.size());
  Context &Ctx = Rewriter.getContext();
  for (unsigned I = 0; I != Results.size(); ++I) {
    FoldResult &R = Results[I];
    if (R.Val) {
      Replacements.push_back(R.Val);
      continue;
    }
    assert(R.Attr && "empty fold result");
    const auto &Materialize = Ctx.getConstantMaterializer();
    if (!Materialize)
      return failure();
    OpBuilder::InsertionGuard Guard(Rewriter);
    Rewriter.setInsertionPoint(Op);
    Operation *Const =
        Materialize(Rewriter, R.Attr, Op->getResult(I)->getType());
    if (!Const)
      return failure();
    Replacements.push_back(Const->getResult(0));
  }
  Rewriter.replaceOp(Op, Replacements);
  return success();
}

//===----------------------------------------------------------------------===//
// Greedy driver
//===----------------------------------------------------------------------===//

namespace {

/// Worklist that tolerates op erasure: erased ops are dropped from the
/// membership set; stale vector entries are skipped at pop time by checking
/// membership (pointers are never dereferenced once removed).
class Worklist : public RewriteListener {
public:
  void push(Operation *Op) {
    if (InList.insert(Op).second)
      List.push_back(Op);
  }

  Operation *pop() {
    while (!List.empty()) {
      Operation *Op = List.back();
      List.pop_back();
      if (InList.erase(Op))
        return Op;
    }
    return nullptr;
  }

  bool empty() const { return InList.empty(); }

  void notifyCreated(Operation *Op) override {
    push(Op);
    AnyChange = true;
  }
  void notifyErased(Operation *Op) override {
    InList.erase(Op);
    AnyChange = true;
  }
  void notifyChanged(Operation *Op) override {
    push(Op);
    AnyChange = true;
  }

  bool AnyChange = false;

private:
  std::vector<Operation *> List;
  std::unordered_set<Operation *> InList;
};

/// True if \p Op can be erased when its results are unused: pure ops and
/// pure allocations (lp.construct / lp.pap). This is the paper's Dead
/// Region Elimination when applied to rgn.val (Section IV-B-1).
bool isTriviallyDeadWhenUnused(Operation *Op) {
  if (Op->getNumResults() == 0)
    return false;
  return Op->hasTrait(OpTrait_Pure) || Op->hasTrait(OpTrait_Allocates);
}

} // namespace

LogicalResult lz::applyPatternsGreedily(Operation *Scope,
                                        const PatternSet &Patterns,
                                        bool *Changed,
                                        GreedyRewriteStats *Stats) {
  GreedyRewriteStats LocalStats;
  if (!Stats)
    Stats = &LocalStats;
  Context *Ctx = Scope->getContext();
  PatternRewriter Rewriter(*Ctx);
  Worklist WL;
  Rewriter.setListener(&WL);

  // Index patterns by interned anchor op name (pointer-hashed lookups in
  // the pop loop); benefit-descending order.
  std::vector<const RewritePattern *> AnyPatterns;
  std::unordered_map<Identifier, std::vector<const RewritePattern *>> ByName;
  for (const auto &P : Patterns.get()) {
    if (P->getOpName().empty())
      AnyPatterns.push_back(P.get());
    else
      ByName[Ctx->getIdentifier(P->getOpName())].push_back(P.get());
  }
  auto ByBenefit = [](const RewritePattern *A, const RewritePattern *B) {
    return A->getBenefit() > B->getBenefit();
  };
  for (auto &[Name, Vec] : ByName)
    std::stable_sort(Vec.begin(), Vec.end(), ByBenefit);
  std::stable_sort(AnyPatterns.begin(), AnyPatterns.end(), ByBenefit);

  // Seed with all nested ops (post-order so uses simplify before defs).
  for (unsigned I = 0; I != Scope->getNumRegions(); ++I)
    Scope->getRegion(I).walk([&](Operation *Op) { WL.push(Op); });

  constexpr int MaxRewrites = 1 << 22; // fixpoint budget / cycle breaker
  int Budget = MaxRewrites;
  bool AnyChange = false;

  // Reused scratch for the operand-defining ops that must be revisited
  // after an erase/fold invalidates the operand views (capacity amortizes
  // to zero allocations across the whole fixpoint loop).
  std::vector<Operation *> DefScratch;
  auto collectDefs = [&DefScratch](Operation *Op) {
    DefScratch.clear();
    for (Value *V : Op->getOperands())
      if (Operation *Def = V->getDefiningOp())
        DefScratch.push_back(Def);
  };

  while (Operation *Op = WL.pop()) {
    if (--Budget == 0)
      return failure();

    // Integrated trivial DCE.
    if (isTriviallyDeadWhenUnused(Op) && Op->use_empty()) {
      collectDefs(Op);
      Rewriter.eraseOp(Op);
      AnyChange = true;
      ++Stats->OpsErased;
      for (Operation *Def : DefScratch)
        WL.push(Def);
      continue;
    }

    // Folding.
    collectDefs(Op);
    if (succeeded(tryFold(Op, Rewriter))) {
      AnyChange = true;
      ++Stats->OpsFolded;
      for (Operation *Def : DefScratch)
        WL.push(Def);
      continue;
    }

    // Patterns.
    auto TryPatterns =
        [&](const std::vector<const RewritePattern *> &List) -> bool {
      for (const RewritePattern *P : List) {
        WL.AnyChange = false;
        if (succeeded(P->matchAndRewrite(Op, Rewriter)))
          return true;
        assert(!WL.AnyChange && "pattern mutated IR but reported failure");
      }
      return false;
    };

    bool Matched = false;
    auto It = ByName.find(Op->getNameId());
    if (It != ByName.end())
      Matched = TryPatterns(It->second);
    if (!Matched)
      Matched = TryPatterns(AnyPatterns);
    if (Matched)
      ++Stats->PatternsApplied;
    AnyChange |= Matched;
  }

  if (Changed)
    *Changed = AnyChange;
  return success();
}
