//===- Equivalence.h - structural op equivalence & region numbering -*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural hashing and equivalence of operations *including their nested
/// regions* — the paper's "Global Region Numbering" (Section IV-B-2):
///
///   "the value number of the region is defined as a rolling hash of the
///    value numbers of all instructions within the region. Two regions ...
///    have the same value number if and only if the sequence of
///    instructions in the two regions have the same value numbers in
///    identical order."
///
/// Values defined outside the op under comparison are numbered by pointer
/// identity; values defined inside are numbered positionally. MLIR itself
/// did not provide this ("MLIR does not perform global value numbering as
/// it is unclear how to define value numbers for instructions with
/// regions" — paper footnote 2); this module is the extension the paper
/// contributes, and the CSE pass consumes it.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_REWRITE_EQUIVALENCE_H
#define LZ_REWRITE_EQUIVALENCE_H

#include <cstdint>

namespace lz {

class Operation;

/// Rolling structural hash of \p Op: name, attributes, result types,
/// operand numbering, and recursively the regions' instruction sequences.
uint64_t computeOpHash(Operation *Op);

/// True if \p A and \p B are structurally equivalent: same op name,
/// attributes, types, externally-identical / internally-isomorphic
/// operands, and pairwise-equivalent regions.
bool isStructurallyEquivalent(Operation *A, Operation *B);

} // namespace lz

#endif // LZ_REWRITE_EQUIVALENCE_H
