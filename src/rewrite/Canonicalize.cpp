//===- Canonicalize.cpp - fold + pattern canonicalization ---------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The canonicalizer drives every registered op's folds and
/// canonicalization patterns (plus the rgn patterns) to fixpoint. With the
/// rgn dialect loaded this implements the optimization chains of
/// Section IV-B, e.g. Figure 1-B Case Elimination:
///
///   %x = rgn.val { return 3 }              (select const-folds)
///   %y = rgn.val { return 5 }         =>   (run-of-known-region inlines)
///   %z = select true, %x, %y               (dead rgn.vals erased)
///   rgn.run %z                        =>   return 3
///
//===----------------------------------------------------------------------===//

#include "rewrite/Passes.h"

#include "rewrite/Pattern.h"

using namespace lz;

namespace {

class CanonicalizerPass : public Pass {
public:
  std::string_view getName() const override { return "canonicalize"; }

  LogicalResult run(Operation *Root) override {
    PatternSet Patterns;
    Root->getContext()->forEachOpDef([&](const OpDef &Def) {
      if (Def.CanonicalizationPatterns)
        Def.CanonicalizationPatterns(Patterns);
    });
    populateRgnPatterns(Patterns);
    return applyPatternsGreedily(Root, Patterns);
  }
};

} // namespace

std::unique_ptr<Pass> lz::createCanonicalizerPass() {
  return std::make_unique<CanonicalizerPass>();
}
