//===- Canonicalize.cpp - fold + pattern canonicalization ---------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The canonicalizer drives every registered op's folds and
/// canonicalization patterns (plus the rgn patterns) to fixpoint. With the
/// rgn dialect loaded this implements the optimization chains of
/// Section IV-B, e.g. Figure 1-B Case Elimination:
///
///   %x = rgn.val { return 3 }              (select const-folds)
///   %y = rgn.val { return 5 }         =>   (run-of-known-region inlines)
///   %z = select true, %x, %y               (dead rgn.vals erased)
///   rgn.run %z                        =>   return 3
///
//===----------------------------------------------------------------------===//

#include "rewrite/Passes.h"

#include "rewrite/Pattern.h"

using namespace lz;

namespace {

class CanonicalizerPass : public Pass {
public:
  std::string_view getName() const override { return "canonicalize"; }

  LogicalResult run(Operation *Root) override {
    Context *Ctx = Root->getContext();
    // The pattern set is built once per context and cached there; any op
    // registration after the build invalidates the cache, so late dialect
    // loads still contribute their patterns. Holding the shared_ptr keeps
    // the set alive through this run even across such an invalidation.
    std::shared_ptr<const PatternSet> Patterns =
        Ctx->getCachedCanonicalizationPatterns();
    if (!Patterns) {
      auto Set = std::make_shared<PatternSet>();
      Ctx->forEachOpDef([&](const OpDef &Def) {
        if (Def.CanonicalizationPatterns)
          Def.CanonicalizationPatterns(*Set);
      });
      populateRgnPatterns(*Set);
      Patterns = std::move(Set);
      Ctx->setCachedCanonicalizationPatterns(Patterns);
    }

    GreedyRewriteStats Stats;
    LogicalResult Result =
        applyPatternsGreedily(Root, *Patterns, /*Changed=*/nullptr, &Stats);
    PatternsApplied += Stats.PatternsApplied;
    OpsFolded += Stats.OpsFolded;
    OpsErased += Stats.OpsErased;
    return Result;
  }

private:
  Statistic PatternsApplied{this, "patterns-applied",
                            "Number of rewrite patterns applied"};
  Statistic OpsFolded{this, "ops-folded", "Number of operations folded"};
  Statistic OpsErased{this, "ops-erased",
                      "Number of trivially dead operations erased"};
};

} // namespace

std::unique_ptr<Pass> lz::createCanonicalizerPass() {
  return std::make_unique<CanonicalizerPass>();
}
