//===- DCE.cpp - dead code and unreachable block elimination ------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Iteratively erases unused pure/allocating ops. Because `rgn.val` is
/// pure, this single classical pass is the paper's Dead Region Elimination
/// (Section IV-B-1: "If a region value is never referenced, then it is
/// never executed. It is thus dead and can safely be removed") and, via lp
/// constants, Figure 1-A's Dead Expression Elimination.
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "ir/Verifier.h"
#include "rewrite/Passes.h"

#include <unordered_set>

using namespace lz;

namespace {

bool isTriviallyDead(Operation *Op) {
  if (Op->getNumResults() == 0 || !Op->use_empty())
    return false;
  return Op->hasTrait(OpTrait_Pure) || Op->hasTrait(OpTrait_Allocates);
}

/// One bottom-up sweep over all ops nested under \p Root. Post-order means
/// a chain of dead ops dies in a single sweep. Returns the erase count.
unsigned sweepDeadOps(Operation *Root) {
  unsigned Erased = 0;
  for (unsigned I = 0; I != Root->getNumRegions(); ++I) {
    Root->getRegion(I).walk([&](Operation *Op) {
      if (isTriviallyDead(Op)) {
        Op->erase();
        ++Erased;
      }
    });
  }
  return Erased;
}

/// Removes blocks unreachable from their region's entry; returns how many.
unsigned eraseUnreachableBlocks(Region &R) {
  if (R.getNumBlocks() <= 1)
    return 0;
  DominanceInfo Dom(R);
  std::vector<Block *> Dead;
  for (const auto &B : R)
    if (!Dom.isReachable(B.get()))
      Dead.push_back(B.get());
  if (Dead.empty())
    return 0;

  // Drop all operand links (including in nested ops) first: unreachable
  // blocks may reference each other and reachable code cyclically.
  for (Block *B : Dead) {
    for (Operation *Op : *B) {
      Op->walk([](Operation *Nested) {
        for (unsigned I = 0; I != Nested->getNumOperands(); ++I)
          Nested->getOpOperand(I).set(nullptr);
      });
    }
  }
  for (Block *B : Dead)
    R.eraseBlock(B);
  return static_cast<unsigned>(Dead.size());
}

unsigned sweepUnreachable(Operation *Root) {
  unsigned Erased = 0;
  for (unsigned I = 0; I != Root->getNumRegions(); ++I) {
    Region &R = Root->getRegion(I);
    Erased += eraseUnreachableBlocks(R);
    for (const auto &B : R)
      for (Operation *Op : *B)
        Erased += sweepUnreachable(Op);
  }
  return Erased;
}

class DCEPass : public Pass {
public:
  std::string_view getName() const override { return "dce"; }
  LogicalResult run(Operation *Root) override {
    bool Changed = true;
    while (Changed) {
      unsigned Blocks = sweepUnreachable(Root);
      unsigned Ops = sweepDeadOps(Root);
      BlocksErased += Blocks;
      OpsErased += Ops;
      Changed = Blocks != 0 || Ops != 0;
    }
    return success();
  }

private:
  Statistic OpsErased{this, "ops-erased", "Number of dead operations erased"};
  Statistic BlocksErased{this, "blocks-erased",
                         "Number of unreachable blocks erased"};
};

} // namespace

std::unique_ptr<Pass> lz::createDCEPass() {
  return std::make_unique<DCEPass>();
}
