//===- DCE.cpp - dead code and unreachable block elimination ------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Iteratively erases unused pure/allocating ops. Because `rgn.val` is
/// pure, this single classical pass is the paper's Dead Region Elimination
/// (Section IV-B-1: "If a region value is never referenced, then it is
/// never executed. It is thus dead and can safely be removed") and, via lp
/// constants, Figure 1-A's Dead Expression Elimination.
///
//===----------------------------------------------------------------------===//

#include "analysis/Dominance.h"
#include "ir/IR.h"
#include "rewrite/Passes.h"

#include <unordered_set>

using namespace lz;

namespace {

bool isTriviallyDead(Operation *Op) {
  if (Op->getNumResults() == 0 || !Op->use_empty())
    return false;
  return Op->hasTrait(OpTrait_Pure) || Op->hasTrait(OpTrait_Allocates);
}

/// One bottom-up sweep over all ops nested under \p Root. Post-order means
/// a chain of dead ops dies in a single sweep. Returns the erase count.
unsigned sweepDeadOps(Operation *Root) {
  unsigned Erased = 0;
  for (unsigned I = 0; I != Root->getNumRegions(); ++I) {
    Root->getRegion(I).walk([&](Operation *Op) {
      if (isTriviallyDead(Op)) {
        Op->erase();
        ++Erased;
      }
    });
  }
  return Erased;
}

/// Removes blocks unreachable from their region's entry; returns how many.
/// \p Dom is the shared cached analysis on the first sweep (nothing has
/// been mutated yet, so its trees are current) and null on later sweeps,
/// which run a plain DFS against the freshly-mutated region — reachability
/// alone doesn't justify rebuilding a dominator fixpoint.
unsigned eraseUnreachableBlocks(Region &R, DominanceAnalysis *Dom) {
  if (R.getNumBlocks() <= 1)
    return 0;
  std::unordered_set<Block *> Reachable;
  if (!Dom) {
    std::vector<Block *> Stack{R.getEntryBlock()};
    Reachable.insert(R.getEntryBlock());
    while (!Stack.empty()) {
      Block *B = Stack.back();
      Stack.pop_back();
      for (Block *Succ : B->getSuccessors())
        if (Reachable.insert(Succ).second)
          Stack.push_back(Succ);
    }
  }
  const DominanceInfo *Info = Dom ? &Dom->getInfo(R) : nullptr;
  auto IsReachable = [&](Block *B) {
    return Info ? Info->isReachable(B) : Reachable.count(B) != 0;
  };
  std::vector<Block *> Dead;
  for (const auto &B : R)
    if (!IsReachable(B.get()))
      Dead.push_back(B.get());
  R.eraseBlocks(Dead);
  return static_cast<unsigned>(Dead.size());
}

unsigned sweepUnreachable(Operation *Root, DominanceAnalysis *Dom) {
  unsigned Erased = 0;
  for (unsigned I = 0; I != Root->getNumRegions(); ++I) {
    Region &R = Root->getRegion(I);
    Erased += eraseUnreachableBlocks(R, Dom);
    for (const auto &B : R)
      for (Operation *Op : *B)
        Erased += sweepUnreachable(Op, Dom);
  }
  return Erased;
}

class DCEPass : public Pass {
public:
  std::string_view getName() const override { return "dce"; }
  LogicalResult run(Operation *Root) override {
    // The first sweep reuses the cached dominance trees when a prior
    // consumer (usually the inter-pass verifier) left them warm — they
    // are still valid, the pass hasn't mutated anything yet. On a cold
    // cache the plain DFS below is strictly cheaper than constructing a
    // dominator fixpoint DCE would discard anyway (it preserves nothing),
    // so don't force a build. Later sweeps recompute reachability locally
    // against the changed CFG.
    DominanceAnalysis *Dom = getCachedAnalysis<DominanceAnalysis>();
    bool Changed = true;
    while (Changed) {
      unsigned Blocks = sweepUnreachable(Root, Dom);
      unsigned Ops = sweepDeadOps(Root);
      BlocksErased += Blocks;
      OpsErased += Ops;
      Changed = Blocks != 0 || Ops != 0;
      Dom = nullptr;
    }
    return success();
  }

private:
  Statistic OpsErased{this, "ops-erased", "Number of dead operations erased"};
  Statistic BlocksErased{this, "blocks-erased",
                         "Number of unreachable blocks erased"};
};

} // namespace

std::unique_ptr<Pass> lz::createDCEPass() {
  return std::make_unique<DCEPass>();
}
