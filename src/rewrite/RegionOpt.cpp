//===- RegionOpt.cpp - rgn-specific rewrite patterns --------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The rgn rewrite patterns of Section IV-B. The heavy lifting of select/
/// switch folding lives in the arith folders and region CSE lives in the
/// CSE pass; what remains is the beta-rule for continuations:
///
///   rgn.run (rgn.val { body }) args  ==>  body[params := args]
///
/// which, chained after the folds, yields the paper's Case Elimination
/// (Figure 1-B), Common Branch Elimination (Figure 1-C) and the worked
/// examples of Section IV-B-1/2.
///
//===----------------------------------------------------------------------===//

#include "dialect/Rgn.h"
#include "rewrite/Passes.h"
#include "rewrite/Pattern.h"

using namespace lz;

namespace {

/// Inlines `rgn.run` of a statically-known single-block region by cloning
/// the region body in place of the terminator. The rgn.val itself is left
/// for trivial DCE once its uses disappear.
class RunKnownRegionPattern : public RewritePattern {
public:
  RunKnownRegionPattern() : RewritePattern("rgn.run") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Operation *Val = rgn::resolveKnownRegion(Op->getOperand(0));
    if (!Val)
      return failure();
    Region &Body = rgn::getValBody(Val);
    if (Body.getNumBlocks() != 1)
      return failure();
    Block *Entry = Body.getEntryBlock();
    assert(Entry->getNumArguments() == Op->getNumOperands() - 1 &&
           "rgn.run arity mismatch survived verification");

    // Do not inline a region into itself (a run nested inside the same
    // rgn.val's body referencing it would loop forever).
    if (Op->isProperAncestor(Val))
      return failure();

    // Clone the body with parameters bound to the run arguments.
    IRMapping Mapping;
    for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
      Mapping.map(Entry->getArgument(I), Op->getOperand(I + 1));

    Rewriter.setInsertionPoint(Op);
    for (Operation *BodyOp : *Entry)
      Rewriter.insert(BodyOp->clone(Mapping));
    Rewriter.eraseOp(Op);
    return success();
  }
};

} // namespace

void lz::populateRgnPatterns(PatternSet &Patterns) {
  Patterns.add<RunKnownRegionPattern>();
}
