//===- Inline.cpp - simple function inliner ------------------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Inlines `func.call` sites whose callee is a small, non-recursive,
/// single-block function ending in `func.return`. This is the "Inliner:
/// MLIR builtin" row of the paper's Figure 11 ecosystem table; join-point
/// inlining is separate (it happens through rgn.run beta reduction).
///
/// Ordering comes from the cached CallGraph analysis: functions are
/// processed callees-before-callers (SCC condensation postorder), so each
/// callee is in final form when its callers consider it and the fixed
/// number of module-wide rescan rounds the pass used to need disappears.
/// Recursion — direct or mutual — is detected exactly via the call graph's
/// cycles instead of the former per-call-site body scan.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "dialect/Func.h"
#include "ir/IR.h"
#include "rewrite/Passes.h"

using namespace lz;

namespace {

class InlinerPass : public Pass {
public:
  explicit InlinerPass(unsigned MaxCalleeOps) : MaxCalleeOps(MaxCalleeOps) {}

  std::string_view getName() const override { return "inline"; }

  LogicalResult run(Operation *Module) override {
    (void)Module;
    CallGraph &CG = getAnalysis<CallGraph>();
    for (Operation *Fn : CG.getBottomUpOrder()) {
      // Call sites cloned INTO this function by an inline need no
      // revisit: their callees were already fully processed earlier in
      // the bottom-up order (or sit on a cycle), so they are permanently
      // non-inlinable here — one collection per function suffices.
      std::vector<Operation *> Calls;
      Fn->walk([&](Operation *Op) {
        if (Op->getName() == "func.call")
          Calls.push_back(Op);
      });
      for (Operation *Call : Calls) {
        auto *CalleeAttr = Call->getAttrOfType<SymbolRefAttr>("callee");
        // The graph's symbol map resolves the callee without re-scanning
        // the module; runtime builtins have no node and fall through.
        const CallGraph::Node *CalleeNode = CG.lookup(CalleeAttr->getValue());
        if (!CalleeNode)
          continue;
        // The call graph knows recursion exactly: a self-edge or any
        // multi-node SCC membership. Inlining such a callee could grow
        // forever, so skip and count.
        if (CalleeNode->InCycle) {
          ++RecursiveCalleesSkipped;
          if (getRemarkEngine())
            emitRemark(obs::RemarkKind::Missed, "RecursiveCallee", Call,
                       "not inlining '" +
                           std::string(CalleeAttr->getValue()) +
                           "': callee is on a call-graph cycle",
                       {{"callee", std::string(CalleeAttr->getValue())}});
          continue;
        }
        if (tryInline(Call, CalleeNode->Fn)) {
          ++CalleesInlined;
          if (getRemarkEngine())
            emitRemark(obs::RemarkKind::Applied, "Inlined", Fn,
                       "inlined call to '" +
                           std::string(CalleeAttr->getValue()) + "'",
                       {{"callee", std::string(CalleeAttr->getValue())}});
        }
      }
    }
    return success();
  }

private:
  Statistic CalleesInlined{this, "callees-inlined",
                           "Number of call sites inlined"};
  Statistic RecursiveCalleesSkipped{
      this, "recursive-callees-skipped",
      "Number of call sites skipped because the callee is on a call cycle"};

  bool tryInline(Operation *Call, Operation *Callee) {
    Region &Body = Callee->getRegion(0);
    if (Body.empty() || Body.getNumBlocks() != 1)
      return false;
    Block *Entry = Body.getEntryBlock();
    if (Entry->size() > MaxCalleeOps)
      return false;
    if (!Entry->hasTerminator() ||
        Entry->getTerminator()->getName() != "func.return")
      return false;

    IRMapping Mapping;
    for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
      Mapping.map(Entry->getArgument(I), Call->getOperand(I));

    Block *CallBlock = Call->getBlock();
    Operation *Ret = nullptr;
    for (Operation *BodyOp : *Entry) {
      if (BodyOp == Entry->getTerminator()) {
        Ret = BodyOp;
        break;
      }
      CallBlock->insertBefore(Call, BodyOp->clone(Mapping));
    }
    assert(Ret && "callee had no terminator");
    for (unsigned I = 0; I != Call->getNumResults(); ++I)
      Call->getResult(I)->replaceAllUsesWith(
          Mapping.lookupOrDefault(Ret->getOperand(I)));
    Call->erase();
    return true;
  }

  unsigned MaxCalleeOps;
};

} // namespace

std::unique_ptr<Pass> lz::createInlinerPass(unsigned MaxCalleeOps) {
  return std::make_unique<InlinerPass>(MaxCalleeOps);
}
