//===- Inline.cpp - simple function inliner ------------------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Inlines `func.call` sites whose callee is a small, non-recursive,
/// single-block function ending in `func.return`. This is the "Inliner:
/// MLIR builtin" row of the paper's Figure 11 ecosystem table; join-point
/// inlining is separate (it happens through rgn.run beta reduction).
///
//===----------------------------------------------------------------------===//

#include "dialect/Func.h"
#include "ir/Module.h"
#include "rewrite/Passes.h"

using namespace lz;

namespace {

/// True if \p FuncOp (a single-block function) contains a call to itself.
bool isDirectlyRecursive(Operation *FuncOp) {
  std::string_view Name = func::getFuncName(FuncOp);
  bool Recursive = false;
  FuncOp->getRegion(0).walk([&](Operation *Op) {
    if (Op->getName() != "func.call")
      return;
    auto *Callee = Op->getAttrOfType<SymbolRefAttr>("callee");
    if (Callee && Callee->getValue() == Name)
      Recursive = true;
  });
  return Recursive;
}

class InlinerPass : public Pass {
public:
  explicit InlinerPass(unsigned MaxCalleeOps) : MaxCalleeOps(MaxCalleeOps) {}

  std::string_view getName() const override { return "inline"; }

  LogicalResult run(Operation *Module) override {
    bool Changed = true;
    unsigned Rounds = 0;
    while (Changed && Rounds++ < 4) {
      Changed = false;
      std::vector<Operation *> Calls;
      for (Operation *Fn : *getModuleBody(Module))
        Fn->walk([&](Operation *Op) {
          if (Op->getName() == "func.call")
            Calls.push_back(Op);
        });
      for (Operation *Call : Calls)
        if (tryInline(Module, Call)) {
          Changed = true;
          ++CalleesInlined;
        }
    }
    return success();
  }

private:
  Statistic CalleesInlined{this, "callees-inlined",
                           "Number of call sites inlined"};
  bool tryInline(Operation *Module, Operation *Call) {
    auto *CalleeAttr = Call->getAttrOfType<SymbolRefAttr>("callee");
    Operation *Callee = lookupSymbol(Module, CalleeAttr->getValue());
    if (!Callee || Callee->getName() != "func.func")
      return false;
    Region &Body = Callee->getRegion(0);
    if (Body.empty() || Body.getNumBlocks() != 1)
      return false;
    Block *Entry = Body.getEntryBlock();
    if (Entry->size() > MaxCalleeOps)
      return false;
    if (!Entry->hasTerminator() ||
        Entry->getTerminator()->getName() != "func.return")
      return false;
    if (isDirectlyRecursive(Callee))
      return false;
    // Self-inlining a call inside the callee's own body is covered by the
    // recursion check above.

    IRMapping Mapping;
    for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
      Mapping.map(Entry->getArgument(I), Call->getOperand(I));

    Block *CallBlock = Call->getBlock();
    Operation *Ret = nullptr;
    for (Operation *BodyOp : *Entry) {
      if (BodyOp == Entry->getTerminator()) {
        Ret = BodyOp;
        break;
      }
      CallBlock->insertBefore(Call, BodyOp->clone(Mapping));
    }
    assert(Ret && "callee had no terminator");
    for (unsigned I = 0; I != Call->getNumResults(); ++I)
      Call->getResult(I)->replaceAllUsesWith(
          Mapping.lookupOrDefault(Ret->getOperand(I)));
    Call->erase();
    return true;
  }

  unsigned MaxCalleeOps;
};

} // namespace

std::unique_ptr<Pass> lz::createInlinerPass(unsigned MaxCalleeOps) {
  return std::make_unique<InlinerPass>(MaxCalleeOps);
}
