//===- Equivalence.cpp - structural op equivalence & region numbering --------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Equivalence.h"

#include "ir/IR.h"
#include "support/Hashing.h"

#include <unordered_map>

using namespace lz;

namespace {

/// Assigns dense local numbers to values defined inside the op being
/// hashed/compared; values not in the map are external.
class LocalNumbering {
public:
  void define(Value *V) { Numbers.emplace(V, NextNumber++); }

  /// Returns (isLocal, number-or-zero).
  std::pair<bool, uint64_t> lookup(Value *V) const {
    auto It = Numbers.find(V);
    if (It == Numbers.end())
      return {false, 0};
    return {true, It->second};
  }

private:
  std::unordered_map<Value *, uint64_t> Numbers;
  uint64_t NextNumber = 1;
};

void hashAttr(RollingHash &H, Attribute *A) {
  // Attributes are uniqued per context: the pointer identifies the value
  // within a run, which is all a hash table needs.
  H.add(reinterpret_cast<uintptr_t>(A));
}

void hashOpInto(Operation *Op, RollingHash &H, LocalNumbering &Local);

/// Hashes one op's shallow payload (kind, attrs, operands, result types,
/// region count) — the single encoding shared by the general numbered path
/// and computeOpHash's region-free fast path. \p Local may be null when no
/// local definitions can exist (top-level hashing of a region-free op):
/// every operand then hashes as external and results need no numbering.
void hashOpPayload(Operation *Op, RollingHash &H, LocalNumbering *Local) {
  // The op kind and attribute keys are context-interned: their pool
  // addresses identify them within a run, which is all a hash table needs.
  H.add(reinterpret_cast<uintptr_t>(Op->getNameId().getAsOpaquePointer()));
  for (const auto &[Name, Attr] : Op->getAttrs()) {
    H.add(reinterpret_cast<uintptr_t>(Name.getAsOpaquePointer()));
    hashAttr(H, Attr);
  }
  for (unsigned I = 0; I != Op->getNumOperands(); ++I) {
    Value *V = Op->getOperand(I);
    auto [IsLocal, Number] =
        Local ? Local->lookup(V) : std::pair<bool, uint64_t>{false, 0};
    if (IsLocal) {
      H.add(0xA11CE);
      H.add(Number);
    } else {
      H.add(0xB0B);
      H.add(reinterpret_cast<uintptr_t>(V));
    }
  }
  for (unsigned I = 0; I != Op->getNumResults(); ++I) {
    if (Local)
      Local->define(Op->getResult(I));
    H.add(reinterpret_cast<uintptr_t>(Op->getResult(I)->getType()));
  }
  H.add(Op->getNumRegions());
}

void hashRegionInto(Region &R, RollingHash &H, LocalNumbering &Local) {
  // Number all block arguments first, then instructions in layout order —
  // the rolling hash over the instruction sequence.
  std::unordered_map<Block *, uint64_t> BlockNumbers;
  uint64_t NextBlock = 1;
  for (const auto &B : R) {
    BlockNumbers.emplace(B.get(), NextBlock++);
    H.add(B->getNumArguments());
    for (unsigned I = 0; I != B->getNumArguments(); ++I) {
      Local.define(B->getArgument(I));
      H.add(reinterpret_cast<uintptr_t>(B->getArgument(I)->getType()));
    }
  }
  for (const auto &B : R) {
    for (Operation *Op : *B) {
      hashOpInto(Op, H, Local);
      // Successor block structure participates in the region's number.
      for (unsigned I = 0; I != Op->getNumSuccessors(); ++I)
        H.add(BlockNumbers.at(Op->getSuccessor(I)));
    }
  }
}

void hashOpInto(Operation *Op, RollingHash &H, LocalNumbering &Local) {
  hashOpPayload(Op, H, &Local);
  for (unsigned I = 0; I != Op->getNumRegions(); ++I)
    hashRegionInto(Op->getRegion(I), H, Local);
}

//===----------------------------------------------------------------------===//
// Equivalence
//===----------------------------------------------------------------------===//

/// Maps values local to A onto values local to B.
using ValueCorrespondence = std::unordered_map<Value *, Value *>;

bool equivalentOps(Operation *A, Operation *B, ValueCorrespondence &Map);

bool equivalentRegions(Region &RA, Region &RB, ValueCorrespondence &Map) {
  if (RA.getNumBlocks() != RB.getNumBlocks())
    return false;
  // Pair blocks positionally and pre-map their arguments.
  std::unordered_map<Block *, Block *> BlockMap;
  for (size_t I = 0; I != RA.getNumBlocks(); ++I) {
    Block *BA = RA.getBlock(I);
    Block *BB = RB.getBlock(I);
    BlockMap.emplace(BA, BB);
    if (BA->getNumArguments() != BB->getNumArguments())
      return false;
    for (unsigned J = 0; J != BA->getNumArguments(); ++J) {
      if (BA->getArgument(J)->getType() != BB->getArgument(J)->getType())
        return false;
      Map.emplace(BA->getArgument(J), BB->getArgument(J));
    }
  }
  for (size_t I = 0; I != RA.getNumBlocks(); ++I) {
    Block *BA = RA.getBlock(I);
    Block *BB = RB.getBlock(I);
    auto ItA = BA->begin(), EndA = BA->end();
    auto ItB = BB->begin(), EndB = BB->end();
    for (; ItA != EndA && ItB != EndB; ++ItA, ++ItB) {
      Operation *OA = *ItA;
      Operation *OB = *ItB;
      if (!equivalentOps(OA, OB, Map))
        return false;
      if (OA->getNumSuccessors() != OB->getNumSuccessors())
        return false;
      for (unsigned S = 0; S != OA->getNumSuccessors(); ++S)
        if (BlockMap.at(OA->getSuccessor(S)) != OB->getSuccessor(S))
          return false;
    }
    if (ItA != EndA || ItB != EndB)
      return false;
  }
  return true;
}

bool equivalentOps(Operation *A, Operation *B, ValueCorrespondence &Map) {
  if (A->getNameId() != B->getNameId())
    return false;
  if (A->getAttrs() != B->getAttrs())
    return false;
  if (A->getNumOperands() != B->getNumOperands() ||
      A->getNumResults() != B->getNumResults() ||
      A->getNumRegions() != B->getNumRegions())
    return false;
  for (unsigned I = 0; I != A->getNumOperands(); ++I) {
    Value *VA = A->getOperand(I);
    Value *VB = B->getOperand(I);
    auto It = Map.find(VA);
    if (It != Map.end()) {
      if (It->second != VB)
        return false;
    } else if (VA != VB) {
      // External operands must be the very same SSA value.
      return false;
    }
  }
  for (unsigned I = 0; I != A->getNumResults(); ++I) {
    if (A->getResult(I)->getType() != B->getResult(I)->getType())
      return false;
    Map.emplace(A->getResult(I), B->getResult(I));
  }
  for (unsigned I = 0; I != A->getNumRegions(); ++I)
    if (!equivalentRegions(A->getRegion(I), B->getRegion(I), Map))
      return false;
  return true;
}

} // namespace

uint64_t lz::computeOpHash(Operation *Op) {
  RollingHash H;
  // Region-free ops (the common CSE candidate) need no local numbering: the
  // top-level numbering starts empty, so every operand hashes as external
  // and the defined results are never looked up — skip the map allocation.
  if (Op->getNumRegions() == 0) {
    hashOpPayload(Op, H, /*Local=*/nullptr);
    return H.get();
  }
  LocalNumbering Local;
  hashOpInto(Op, H, Local);
  return H.get();
}

bool lz::isStructurallyEquivalent(Operation *A, Operation *B) {
  if (A == B)
    return true;
  ValueCorrespondence Map;
  return equivalentOps(A, B, Map);
}
