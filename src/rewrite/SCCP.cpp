//===- SCCP.cpp - sparse conditional constant propagation ---------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Wegman–Zadeck sparse conditional constant propagation over the CFG
/// dialect — the canonical SSA dataflow optimization the paper's thesis
/// ("classic SSA passes apply directly") calls for. The solver runs the
/// classic optimistic three-point lattice (unknown → constant →
/// overdefined) with an executable-edge worklist: block arguments meet
/// incoming values over *feasible* edges only, so a constant that survives
/// a join of two reachable-but-equal branches still folds — strictly
/// stronger than the canonicalizer's local folds. Evaluation is
/// dialect-independent: ConstantLike ops seed the lattice and any op
/// carrying an OpDef::EvalConstants hook (all of arith) evaluates on
/// lattice constants without materialized operands.
///
/// The rewrite phase materializes lattice constants (through the context's
/// constant materializer, so !lp.t values become lp.int), replaces
/// conditional branches on constants with unconditional ones, and deletes
/// never-executed blocks.
///
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/IR.h"
#include "rewrite/Passes.h"

#include <unordered_map>
#include <unordered_set>

using namespace lz;

namespace {

struct LatticeValue {
  enum Kind : uint8_t { Unknown, Constant, Overdefined } K = Unknown;
  Attribute *C = nullptr;
};

/// Solves and rewrites one region's CFG.
class SCCPSolver {
public:
  SCCPSolver(Region &R) : R(R) {}

  struct RewriteCounts {
    uint64_t ConstantsPropagated = 0;
    uint64_t BranchesRewritten = 0;
    uint64_t BlocksErased = 0;
  };

  RewriteCounts run() {
    if (R.empty())
      return Counts;
    solve();
    rewrite();
    return Counts;
  }

private:
  //===------------------------------------------------------------------===//
  // Solving
  //===------------------------------------------------------------------===//

  void solve() {
    Block *Entry = R.getEntryBlock();
    Executable.insert(Entry);
    // Region arguments (function parameters) are runtime inputs.
    for (BlockArgument *A : Entry->getArguments())
      setOverdefined(A);
    BlockWorklist.push_back(Entry);

    while (!BlockWorklist.empty() || !OpWorklist.empty()) {
      while (!OpWorklist.empty()) {
        Operation *Op = OpWorklist.back();
        OpWorklist.pop_back();
        if (Executable.count(Op->getBlock()))
          visit(Op);
      }
      if (!BlockWorklist.empty()) {
        Block *B = BlockWorklist.back();
        BlockWorklist.pop_back();
        for (Operation *Op : *B)
          visit(Op);
      }
    }
  }

  void visit(Operation *Op) {
    if (Op->isTerminator() && Op->getNumSuccessors() != 0) {
      visitTerminator(Op);
      return;
    }
    if (Op->hasTrait(OpTrait_ConstantLike)) {
      if (Attribute *V = Op->getAttr("value"))
        setConstant(Op->getResult(0), V);
      else
        setOverdefined(Op->getResult(0));
      return;
    }
    if (Op->getNumResults() == 0)
      return;

    const auto &Eval = Op->getDef().EvalConstants;
    if (Eval && Op->getNumRegions() == 0) {
      // Scratch buffers are solver members: visit() runs once per op per
      // lattice refinement, the hottest loop of the phase.
      bool AnyUnknown = false;
      OperandConsts.clear();
      OperandConsts.reserve(Op->getNumOperands());
      for (Value *V : Op->getOperands()) {
        LatticeValue L = getLattice(V);
        AnyUnknown |= L.K == LatticeValue::Unknown;
        OperandConsts.push_back(L.C);
      }
      if (AnyUnknown)
        return; // optimistic: wait for operands to resolve
      // Overdefined operands stay in the span as nulls: hooks that can
      // still fold — arith.select with a constant selector, lp.getlabel of
      // a statically-known lp.construct — get their chance; the rest bail
      // on the null and the results go overdefined as before.
      EvalOut.clear();
      if (succeeded(Eval(Op, OperandConsts, EvalOut)) &&
          EvalOut.size() == Op->getNumResults()) {
        for (unsigned I = 0; I != Op->getNumResults(); ++I)
          setConstant(Op->getResult(I), EvalOut[I]);
      } else {
        markAllResultsOverdefined(Op); // e.g. division by zero
      }
      return;
    }
    markAllResultsOverdefined(Op);
  }

  void visitTerminator(Operation *Term) {
    std::string_view Name = Term->getName();
    if (Name == "cf.cond_br" && Term->getNumSuccessors() == 2) {
      LatticeValue Cond = getLattice(Term->getOperand(0));
      if (Cond.K == LatticeValue::Unknown)
        return;
      if (Cond.K == LatticeValue::Constant) {
        if (auto *C = dyn_cast<IntegerAttr>(Cond.C)) {
          markEdge(Term, C->getValue() ? 0 : 1);
          return;
        }
      }
    } else if (Name == "cf.switch") {
      LatticeValue Flag = getLattice(Term->getOperand(0));
      if (Flag.K == LatticeValue::Unknown)
        return;
      if (Flag.K == LatticeValue::Constant) {
        if (auto *C = dyn_cast<IntegerAttr>(Flag.C)) {
          markEdge(Term, successorForSwitchFlag(Term, C->getValue()));
          return;
        }
      }
    }
    // Unconditional branch, or a multi-way branch whose selector is
    // overdefined: every outgoing edge is feasible.
    for (unsigned I = 0; I != Term->getNumSuccessors(); ++I)
      markEdge(Term, I);
  }

  /// Successor index taken by cf.switch for \p FlagValue: successor 0 is
  /// the default, successor 1+i belongs to cases[i].
  static unsigned successorForSwitchFlag(Operation *Term, int64_t FlagValue) {
    auto *Cases = Term->getAttrOfType<ArrayAttr>("cases");
    if (Cases)
      for (size_t I = 0; I != Cases->size(); ++I)
        if (cast<IntegerAttr>(Cases->getValue()[I])->getValue() == FlagValue)
          return static_cast<unsigned>(1 + I);
    return 0;
  }

  /// Marks the edge Term -> successor \p SuccIdx feasible: meets the
  /// forwarded operands into the successor's arguments and schedules the
  /// successor if it just became executable. Re-meeting on terminator
  /// revisits is what propagates later lattice refinements.
  void markEdge(Operation *Term, unsigned SuccIdx) {
    Block *To = Term->getSuccessor(SuccIdx);
    OperandRange Args = Term->getSuccessorOperands(SuccIdx);
    for (unsigned J = 0; J != Args.size(); ++J)
      meetInto(To->getArgument(J), getLattice(Args[J]));
    if (Executable.insert(To).second)
      BlockWorklist.push_back(To);
  }

  LatticeValue getLattice(Value *V) const {
    auto It = LV.find(V);
    if (It != LV.end())
      return It->second;
    Block *PB = V->getParentBlock();
    if (!PB || PB->getParent() != &R)
      return {LatticeValue::Overdefined, nullptr}; // defined outside this CFG
    return {LatticeValue::Unknown, nullptr};
  }

  void setConstant(Value *V, Attribute *C) {
    meetInto(V, {LatticeValue::Constant, C});
  }
  void setOverdefined(Value *V) {
    meetInto(V, {LatticeValue::Overdefined, nullptr});
  }
  void markAllResultsOverdefined(Operation *Op) {
    for (OpResult *Res : Op->getResults())
      setOverdefined(Res);
  }

  void meetInto(Value *V, LatticeValue New) {
    if (New.K == LatticeValue::Unknown)
      return;
    LatticeValue &Cur = LV[V];
    if (Cur.K == LatticeValue::Overdefined)
      return;
    // Attributes are context-uniqued, so constant equality is pointer
    // equality.
    if (Cur.K == New.K && Cur.C == New.C)
      return;
    Cur = Cur.K == LatticeValue::Unknown
              ? New
              : LatticeValue{LatticeValue::Overdefined, nullptr};
    for (OpOperand *Use = V->getFirstUse(); Use; Use = Use->getNextUse()) {
      Operation *User = Use->getOwner();
      Block *UB = User->getBlock();
      if (UB && UB->getParent() == &R && Executable.count(UB))
        OpWorklist.push_back(User);
    }
  }

  //===------------------------------------------------------------------===//
  // Rewriting
  //===------------------------------------------------------------------===//

  void rewrite() {
    Context *Ctx = R.getParentOp()->getContext();
    const auto &Materialize = Ctx->getConstantMaterializer();
    OpBuilder B(*Ctx);

    // Decide every branch fold from the lattice BEFORE materializing
    // constants: RAUW rebinds branch selectors to freshly created
    // constant results that have no lattice entries, so a post-RAUW
    // lattice query would miss folds whose infeasible successors are
    // nevertheless deleted below — leaving a conditional branch into an
    // erased block.
    std::unordered_map<Operation *, unsigned> TakenSucc;
    for (const auto &BPtr : R) {
      Block *Blk = BPtr.get();
      if (!Executable.count(Blk) || Blk->empty() || !Blk->hasTerminator())
        continue;
      Operation *Term = Blk->getTerminator();
      std::string_view Name = Term->getName();
      if (Name == "cf.cond_br" && Term->getNumSuccessors() == 2) {
        LatticeValue Cond = getLattice(Term->getOperand(0));
        if (Cond.K == LatticeValue::Constant)
          if (auto *C = dyn_cast<IntegerAttr>(Cond.C))
            TakenSucc[Term] = C->getValue() ? 0 : 1;
      } else if (Name == "cf.switch") {
        LatticeValue Flag = getLattice(Term->getOperand(0));
        if (Flag.K == LatticeValue::Constant)
          if (auto *C = dyn_cast<IntegerAttr>(Flag.C))
            TakenSucc[Term] = successorForSwitchFlag(Term, C->getValue());
      }
    }

    for (const auto &BPtr : R) {
      Block *Blk = BPtr.get();
      if (!Executable.count(Blk))
        continue;

      // Lattice-constant block arguments: materialize at the block head and
      // redirect every use. The argument itself stays (its feasible
      // predecessors still forward a value).
      if (Materialize) {
        for (BlockArgument *A : Blk->getArguments()) {
          LatticeValue L = getLattice(A);
          if (L.K != LatticeValue::Constant || A->use_empty())
            continue;
          B.setInsertionPointToStart(Blk);
          if (Operation *C = Materialize(B, L.C, A->getType())) {
            A->replaceAllUsesWith(C->getResult(0));
            ++Counts.ConstantsPropagated;
          }
        }
      }

      // Lattice-constant op results.
      Operation *Op = Blk->front();
      while (Op) {
        Operation *Next = Op->getNextNode();
        if (!Op->isTerminator() && !Op->hasTrait(OpTrait_ConstantLike) &&
            Op->getNumResults() != 0 && Materialize) {
          bool AllConst = true;
          for (OpResult *Res : Op->getResults())
            AllConst &= getLattice(Res).K == LatticeValue::Constant;
          if (AllConst) {
            bool AllReplaced = true;
            for (OpResult *Res : Op->getResults()) {
              if (Res->use_empty())
                continue;
              B.setInsertionPoint(Op);
              Operation *C = Materialize(B, getLattice(Res).C, Res->getType());
              if (!C) {
                AllReplaced = false;
                continue;
              }
              Res->replaceAllUsesWith(C->getResult(0));
            }
            if (AllReplaced && Op->use_empty() &&
                Op->hasTrait(OpTrait_Pure) && Op->getNumSuccessors() == 0) {
              Op->erase();
              ++Counts.ConstantsPropagated;
            }
          }
        }
        Op = Next;
      }

      if (!Blk->empty() && Blk->hasTerminator())
        rewriteTerminator(Blk->getTerminator(), B, TakenSucc);
    }

    eraseDeadBlocks();
  }

  /// Replaces a conditional branch whose selector settled on a constant
  /// (per the pre-computed \p TakenSucc decisions) with an unconditional
  /// cf.br to the taken successor.
  void rewriteTerminator(
      Operation *Term, OpBuilder &B,
      const std::unordered_map<Operation *, unsigned> &TakenSucc) {
    auto It = TakenSucc.find(Term);
    if (It == TakenSucc.end())
      return;
    unsigned TakenIdx = It->second;
    Block *Blk = Term->getBlock();
    Block *Dest = Term->getSuccessor(TakenIdx);
    std::vector<Value *> Args = Term->getSuccessorOperands(TakenIdx).vec();
    Term->erase();
    B.setInsertionPointToEnd(Blk);
    OperationState State(B.getContext(), "cf.br");
    State.addSuccessor(Dest, Args);
    B.create(State);
    ++Counts.BranchesRewritten;
  }

  /// Erases the never-executed blocks; the solver guarantees no
  /// executable block references a dead one (and the pre-computed branch
  /// folds above removed every edge into them).
  void eraseDeadBlocks() {
    std::vector<Block *> Dead;
    for (const auto &BPtr : R)
      if (!Executable.count(BPtr.get()))
        Dead.push_back(BPtr.get());
    R.eraseBlocks(Dead);
    Counts.BlocksErased += Dead.size();
  }

  Region &R;
  std::unordered_map<Value *, LatticeValue> LV;
  std::unordered_set<Block *> Executable;
  std::vector<Block *> BlockWorklist;
  std::vector<Operation *> OpWorklist;
  /// visit() scratch space, reused across the fixpoint loop.
  std::vector<Attribute *> OperandConsts;
  std::vector<Attribute *> EvalOut;
  RewriteCounts Counts;
};

class SCCPPass : public Pass {
public:
  std::string_view getName() const override { return "sccp"; }

  LogicalResult run(Operation *Root) override {
    processRegionsOf(Root);
    return success();
  }

private:
  void processRegionsOf(Operation *Op) {
    for (unsigned I = 0; I != Op->getNumRegions(); ++I) {
      Region &R = Op->getRegion(I);
      if (!Op->hasTrait(OpTrait_SymbolTable)) {
        SCCPSolver Solver(R);
        SCCPSolver::RewriteCounts C = Solver.run();
        ConstantsPropagated += C.ConstantsPropagated;
        BranchesRewritten += C.BranchesRewritten;
        BlocksErased += C.BlocksErased;
        if (C.BranchesRewritten && getRemarkEngine())
          emitRemark(obs::RemarkKind::Applied, "FoldedBranch", Op,
                     "folded " + std::to_string(C.BranchesRewritten) +
                         " conditional branch(es) to unconditional (" +
                         std::to_string(C.BlocksErased) +
                         " dead block(s) deleted)",
                     {{"branches", std::to_string(C.BranchesRewritten)},
                      {"blocks-erased", std::to_string(C.BlocksErased)}});
      }
      // Nested regions (and symbol-table members) are independent CFGs;
      // solve whatever survived the rewrite.
      for (const auto &B : R)
        for (Operation *Nested : *B)
          processRegionsOf(Nested);
    }
  }

  Statistic ConstantsPropagated{
      this, "constants-propagated",
      "Number of SSA values replaced by lattice constants"};
  Statistic BranchesRewritten{
      this, "branches-rewritten",
      "Number of conditional branches folded to unconditional"};
  Statistic BlocksErased{this, "blocks-erased",
                         "Number of never-executed blocks deleted"};
};

} // namespace

std::unique_ptr<Pass> lz::createSCCPPass() {
  return std::make_unique<SCCPPass>();
}
