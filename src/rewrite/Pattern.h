//===- Pattern.h - rewrite patterns and the greedy driver -------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pattern-based peephole rewriting, mirroring MLIR's RewritePattern /
/// applyPatternsAndFoldGreedily — the "sophisticated infrastructure for
/// parallel peephole rewriting" the paper leans on (Section I), minus the
/// parallelism. The greedy driver interleaves:
///   * op folds (OpDef::Fold) with constant materialization,
///   * trivial dead code elimination of pure/allocating ops,
///   * the supplied rewrite patterns,
/// until a fixpoint is reached.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_REWRITE_PATTERN_H
#define LZ_REWRITE_PATTERN_H

#include "ir/Builder.h"
#include "support/LogicalResult.h"

#include <memory>
#include <string>
#include <vector>

namespace lz {

class PatternRewriter;

/// A rewrite anchored on one op name (empty = matches any operation).
class RewritePattern {
public:
  RewritePattern(std::string OpName, unsigned Benefit = 1)
      : OpName(std::move(OpName)), Benefit(Benefit) {}
  virtual ~RewritePattern() = default;

  std::string_view getOpName() const { return OpName; }
  unsigned getBenefit() const { return Benefit; }

  /// Attempts to match \p Op and rewrite through \p Rewriter. Must perform
  /// no IR mutation unless it returns success.
  virtual LogicalResult matchAndRewrite(Operation *Op,
                                        PatternRewriter &Rewriter) const = 0;

private:
  std::string OpName;
  unsigned Benefit;
};

/// An owning list of patterns.
class PatternSet {
public:
  template <typename T, typename... Args> void add(Args &&...ArgValues) {
    Patterns.push_back(std::make_unique<T>(std::forward<Args>(ArgValues)...));
  }
  void add(std::unique_ptr<RewritePattern> P) {
    Patterns.push_back(std::move(P));
  }

  const std::vector<std::unique_ptr<RewritePattern>> &get() const {
    return Patterns;
  }

private:
  std::vector<std::unique_ptr<RewritePattern>> Patterns;
};

/// Callbacks letting a driver track IR changes made by patterns.
class RewriteListener {
public:
  virtual ~RewriteListener() = default;
  virtual void notifyCreated(Operation * /*Op*/) {}
  virtual void notifyErased(Operation * /*Op*/) {}
  /// \p Op had operands replaced or was otherwise modified in place.
  virtual void notifyChanged(Operation * /*Op*/) {}
};

/// Builder with mutation helpers that keep a listener informed. All pattern
/// rewrites must go through this interface so the driver's worklist stays
/// consistent.
class PatternRewriter : public OpBuilder {
public:
  explicit PatternRewriter(Context &Ctx) : OpBuilder(Ctx) {}

  void setListener(RewriteListener *L) { Listener = L; }

  Operation *create(const OperationState &State) override {
    Operation *Op = OpBuilder::create(State);
    if (Listener)
      Listener->notifyCreated(Op);
    return Op;
  }

  void insert(Operation *Op) override {
    OpBuilder::insert(Op);
    if (Listener)
      Listener->notifyCreated(Op);
  }

  /// Replaces all uses of \p Op's results with \p NewValues and erases it.
  void replaceOp(Operation *Op, std::span<Value *const> NewValues);

  /// Erases \p Op (results must be unused) and any nested ops.
  void eraseOp(Operation *Op);

  /// Replaces uses of \p From with \p To, notifying users' change.
  void replaceAllUsesWith(Value *From, Value *To);

  /// Notifies that \p Op was modified in place.
  void markChanged(Operation *Op) {
    if (Listener)
      Listener->notifyChanged(Op);
  }

private:
  RewriteListener *Listener = nullptr;
};

/// Counters filled by the greedy driver (feeds the canonicalizer's pass
/// statistics).
struct GreedyRewriteStats {
  uint64_t PatternsApplied = 0; ///< successful RewritePattern applications
  uint64_t OpsFolded = 0;       ///< ops removed or replaced by folding
  uint64_t OpsErased = 0;       ///< trivially dead ops erased by the driver
};

/// Applies folds + patterns greedily until fixpoint over all ops nested
/// under \p Scope (exclusive). Returns success if a fixpoint was reached
/// within the iteration budget; sets \p Changed if any rewrite happened and
/// accumulates counters into \p Stats when non-null.
LogicalResult applyPatternsGreedily(Operation *Scope,
                                    const PatternSet &Patterns,
                                    bool *Changed = nullptr,
                                    GreedyRewriteStats *Stats = nullptr);

/// Folds \p Op if possible: on success results' uses are replaced (and
/// constants materialized); the op itself is erased unless it folded to its
/// own attribute (ConstantLike self-fold). Returns success on any change.
LogicalResult tryFold(Operation *Op, PatternRewriter &Rewriter);

} // namespace lz

#endif // LZ_REWRITE_PATTERN_H
