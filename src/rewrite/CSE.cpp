//===- CSE.cpp - CSE with global region numbering -----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Dominance-scoped common subexpression elimination extended with the
/// paper's Global Region Numbering (Section IV-B-2): op keys include a
/// rolling structural hash of nested regions, so two `rgn.val` ops whose
/// regions compute the same thing collapse into one. Combined with the
/// select folder this performs the paper's Common Branch Elimination:
///
///   %x = rgn.val { return 7 }          %w = rgn.val { return 7 }
///   %y = rgn.val { return 7 }    =>    %z = select %b, %w, %w
///   %z = select %b, %x, %y             (then select folds to %w)
///
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "ir/Verifier.h"
#include "rewrite/Equivalence.h"
#include "rewrite/Passes.h"

#include <unordered_map>

using namespace lz;

namespace {

class CSEDriver {
public:
  bool runOnRegionTree(Region &R) {
    processRegionScope(R);
    return Changed;
  }

private:
  /// One CSE scope: a region processed along its dominator tree. Nested
  /// regions are processed in fresh scopes (conservative, like MLIR CSE).
  void processRegionScope(Region &R) {
    if (R.empty())
      return;
    DominanceInfo Dom(R);

    // Dominator-tree children.
    std::unordered_map<Block *, std::vector<Block *>> Children;
    for (Block *B : Dom.getBlocksInRPO()) {
      Block *Idom = Dom.getIdom(B);
      if (Idom && Idom != B)
        Children[Idom].push_back(B);
    }
    processBlock(R.getEntryBlock(), Children);
    Table.clear();
  }

  void processBlock(
      Block *B,
      std::unordered_map<Block *, std::vector<Block *>> &Children) {
    std::vector<std::pair<uint64_t, Operation *>> Inserted;

    Operation *Op = B->front();
    while (Op) {
      Operation *Next = Op->getNextNode();
      // Nested scopes first so region bodies are in canonical form before
      // the enclosing op is numbered. A fresh driver keeps the nested
      // scope's table from clobbering this one.
      for (unsigned I = 0; I != Op->getNumRegions(); ++I) {
        CSEDriver Nested;
        Changed |= Nested.runOnRegionTree(Op->getRegion(I));
      }

      if (isCSECandidate(Op)) {
        uint64_t H = computeOpHash(Op);
        auto &Bucket = Table[H];
        Operation *Existing = nullptr;
        for (Operation *Cand : Bucket) {
          if (isStructurallyEquivalent(Cand, Op)) {
            Existing = Cand;
            break;
          }
        }
        if (Existing) {
          for (unsigned I = 0; I != Op->getNumResults(); ++I)
            Op->getResult(I)->replaceAllUsesWith(Existing->getResult(I));
          Op->erase();
          Changed = true;
        } else {
          Bucket.push_back(Op);
          Inserted.emplace_back(H, Op);
        }
      }
      Op = Next;
    }

    for (Block *Child : Children[B])
      processBlock(Child, Children);

    // Pop this block's scope.
    for (auto &[H, InsertedOp] : Inserted) {
      auto &Bucket = Table[H];
      for (auto It = Bucket.begin(); It != Bucket.end(); ++It) {
        if (*It == InsertedOp) {
          Bucket.erase(It);
          break;
        }
      }
    }
  }

  static bool isCSECandidate(Operation *Op) {
    // Only side-effect-free ops; allocations are excluded because merging
    // two allocations breaks explicit reference counting.
    return Op->hasTrait(OpTrait_Pure) && Op->getNumResults() >= 1 &&
           Op->getNumSuccessors() == 0 && !Op->isTerminator();
  }

  std::unordered_map<uint64_t, std::vector<Operation *>> Table;
  bool Changed = false;
};

class CSEPass : public Pass {
public:
  std::string_view getName() const override { return "cse"; }
  LogicalResult run(Operation *Root) override {
    CSEDriver Driver;
    for (unsigned I = 0; I != Root->getNumRegions(); ++I)
      Driver.runOnRegionTree(Root->getRegion(I));
    return success();
  }
};

} // namespace

std::unique_ptr<Pass> lz::createCSEPass() {
  return std::make_unique<CSEPass>();
}
