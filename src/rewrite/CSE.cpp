//===- CSE.cpp - CSE with global region numbering -----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Dominance-scoped common subexpression elimination extended with the
/// paper's Global Region Numbering (Section IV-B-2): op keys include a
/// rolling structural hash of nested regions, so two `rgn.val` ops whose
/// regions compute the same thing collapse into one. Combined with the
/// select folder this performs the paper's Common Branch Elimination:
///
///   %x = rgn.val { return 7 }          %w = rgn.val { return 7 }
///   %y = rgn.val { return 7 }    =>    %z = select %b, %w, %w
///   %z = select %b, %x, %y             (then select folds to %w)
///
//===----------------------------------------------------------------------===//

#include "analysis/Dominance.h"
#include "dialect/Lp.h"
#include "ir/IR.h"
#include "rewrite/Equivalence.h"
#include "rewrite/Passes.h"

#include <unordered_map>

using namespace lz;

namespace {

class CSEDriver {
public:
  explicit CSEDriver(DominanceAnalysis &Dom) : Dom(Dom) {}

  bool runOnRegionTree(Region &R) {
    processRegionScope(R);
    return Changed;
  }

  uint64_t getNumCSEd() const { return NumCSEd; }
  bool erasedMultiBlockRegion() const { return ErasedMultiBlockRegion; }

private:
  using TableTy = std::unordered_map<uint64_t, std::vector<Operation *>>;

  /// One CSE scope: a region processed along its dominator tree (taken
  /// from the shared DominanceAnalysis, so a tree the verifier already
  /// built is a cache hit here and vice versa). Nested regions are
  /// processed in fresh scopes (conservative, like MLIR CSE) — implemented
  /// by swapping in a pooled table rather than spinning up a new driver, so
  /// bucket arrays are reused across sibling scopes. Single-block regions
  /// (the common case: rgn.val bodies) skip dominance entirely.
  void processRegionScope(Region &R) {
    if (R.empty())
      return;
    TableTy Saved = std::move(Table);
    Table = takeTableFromPool();
    // Capacity estimate: a handful of CSE candidates per block.
    Table.reserve(R.getNumBlocks() * 8);

    if (R.getNumBlocks() == 1) {
      processBlock(R.getEntryBlock(), /*Dom=*/nullptr);
    } else {
      processBlock(R.getEntryBlock(), &Dom.getInfo(R));
    }

    returnTableToPool(std::move(Table));
    Table = std::move(Saved);
  }

  void processBlock(Block *B, const DominanceInfo *Dom) {
    std::vector<std::pair<uint64_t, Operation *>> Inserted;

    Operation *Op = B->front();
    while (Op) {
      Operation *Next = Op->getNextNode();
      // Nested scopes first so region bodies are in canonical form before
      // the enclosing op is numbered.
      for (unsigned I = 0; I != Op->getNumRegions(); ++I)
        processRegionScope(Op->getRegion(I));

      if (isCSECandidate(Op)) {
        uint64_t H = computeOpHash(Op);
        auto &Bucket = Table[H];
        Operation *Existing = nullptr;
        for (Operation *Cand : Bucket) {
          if (isStructurallyEquivalent(Cand, Op)) {
            Existing = Cand;
            break;
          }
        }
        if (Existing) {
          for (unsigned I = 0; I != Op->getNumResults(); ++I)
            Op->getResult(I)->replaceAllUsesWith(Existing->getResult(I));
          // Only multi-block regions ever enter the dominance cache, so
          // erasing an op that owns one (none of today's dialects do —
          // rgn.val/lp bodies are single-block) is the one case where the
          // pass may not claim the analysis preserved: the cache would
          // keep a tree keyed by the freed Region.
          if (!ErasedMultiBlockRegion)
            Op->walk([&](Operation *N) {
              for (unsigned I = 0; I != N->getNumRegions(); ++I)
                ErasedMultiBlockRegion |=
                    N->getRegion(I).getNumBlocks() > 1;
            });
          Op->erase();
          Changed = true;
          ++NumCSEd;
        } else {
          Bucket.push_back(Op);
          Inserted.emplace_back(H, Op);
        }
      }
      Op = Next;
    }

    if (Dom)
      for (Block *Child : Dom->getChildren(B))
        processBlock(Child, Dom);

    // Pop this block's scope.
    for (auto &[H, InsertedOp] : Inserted) {
      auto &Bucket = Table[H];
      for (auto It = Bucket.begin(); It != Bucket.end(); ++It) {
        if (*It == InsertedOp) {
          Bucket.erase(It);
          break;
        }
      }
    }
  }

  static bool isCSECandidate(Operation *Op) {
    // Only side-effect-free ops; allocations are excluded because merging
    // two allocations breaks explicit reference counting. That includes
    // constants that heap-allocate per execution (lp.bigint, and lp.int
    // outside the small-int boxing range): they are Pure in the IR sense,
    // but each op's single runtime cell would be consumed once per merged
    // use site.
    return Op->hasTrait(OpTrait_Pure) && !Op->hasTrait(OpTrait_Allocates) &&
           !lp::constantAllocates(Op) && Op->getNumResults() >= 1 &&
           Op->getNumSuccessors() == 0 && !Op->isTerminator();
  }

  TableTy takeTableFromPool() {
    if (TablePool.empty())
      return TableTy();
    TableTy T = std::move(TablePool.back());
    TablePool.pop_back();
    return T;
  }

  void returnTableToPool(TableTy T) {
    T.clear(); // keeps the bucket array for the next scope
    TablePool.push_back(std::move(T));
  }

  DominanceAnalysis &Dom;
  TableTy Table;
  std::vector<TableTy> TablePool;
  bool Changed = false;
  bool ErasedMultiBlockRegion = false;
  uint64_t NumCSEd = 0;
};

class CSEPass : public Pass {
public:
  std::string_view getName() const override { return "cse"; }
  LogicalResult run(Operation *Root) override {
    CSEDriver Driver(getAnalysis<DominanceAnalysis>());
    for (unsigned I = 0; I != Root->getNumRegions(); ++I)
      Driver.runOnRegionTree(Root->getRegion(I));
    OpsCSEd += Driver.getNumCSEd();
    // CSE erases operations but never creates, moves or erases blocks of
    // the regions it walks, so the cached dominator trees stay valid —
    // unless an erased op owned a multi-block region whose tree could be
    // cached (see the driver's erase path).
    if (!Driver.erasedMultiBlockRegion())
      markAnalysisPreserved<DominanceAnalysis>();
    return success();
  }

private:
  Statistic OpsCSEd{this, "num-cse'd", "Number of operations CSE'd"};
};

} // namespace

std::unique_ptr<Pass> lz::createCSEPass() {
  return std::make_unique<CSEPass>();
}
