//===- Dialects.h - registration of all dialects ----------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef LZ_DIALECT_DIALECTS_H
#define LZ_DIALECT_DIALECTS_H

namespace lz {
class Context;

/// Registers arith, cf, func, lp and rgn with \p Ctx.
void registerAllDialects(Context &Ctx);
} // namespace lz

#endif // LZ_DIALECT_DIALECTS_H
