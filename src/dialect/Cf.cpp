//===- Cf.cpp - unstructured control flow dialect ---------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "dialect/Cf.h"

#include "dialect/Arith.h"

using namespace lz;
using namespace lz::cf;

void lz::cf::registerCfDialect(Context &Ctx) {
  {
    OpDef Def;
    Def.Name = "cf.br";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      return success(Op->getNumSuccessors() == 1 &&
                     Op->getNumResults() == 0 &&
                     Op->getNumNonSuccessorOperands() == 0);
    };
    Ctx.registerOp(std::move(Def));
  }
  {
    OpDef Def;
    Def.Name = "cf.cond_br";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumSuccessors() != 2 || Op->getNumResults() != 0 ||
          Op->getNumNonSuccessorOperands() != 1)
        return failure();
      auto *CondTy = dyn_cast<IntegerType>(Op->getOperand(0)->getType());
      return success(CondTy && CondTy->getWidth() == 1);
    };
    Ctx.registerOp(std::move(Def));
  }
  {
    OpDef Def;
    Def.Name = "cf.switch";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumResults() != 0 || Op->getNumNonSuccessorOperands() != 1)
        return failure();
      if (!isa<IntegerType>(Op->getOperand(0)->getType()))
        return failure();
      auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
      if (!Cases)
        return failure();
      // Successors: default + one per case.
      return success(Op->getNumSuccessors() == Cases->size() + 1);
    };
    Ctx.registerOp(std::move(Def));
  }
}

Operation *lz::cf::buildBr(OpBuilder &B, Block *Dest,
                           std::span<Value *const> Args) {
  OperationState State(B.getContext(), "cf.br");
  State.addSuccessor(Dest, Args);
  return B.create(State);
}

Operation *lz::cf::buildCondBr(OpBuilder &B, Value *Cond, Block *TrueDest,
                               std::span<Value *const> TrueArgs,
                               Block *FalseDest,
                               std::span<Value *const> FalseArgs) {
  OperationState State(B.getContext(), "cf.cond_br");
  State.Operands.push_back(Cond);
  State.addSuccessor(TrueDest, TrueArgs);
  State.addSuccessor(FalseDest, FalseArgs);
  return B.create(State);
}

Operation *lz::cf::buildSwitchBr(OpBuilder &B, Value *Flag,
                                 std::span<int64_t const> Cases,
                                 Block *DefaultDest,
                                 std::span<Value *const> DefaultArgs,
                                 std::span<Block *const> CaseDests,
                                 std::span<std::vector<Value *> const> CaseArgs) {
  assert(Cases.size() == CaseDests.size() && Cases.size() == CaseArgs.size() &&
         "switch case arity mismatch");
  OperationState State(B.getContext(), "cf.switch");
  State.Operands.push_back(Flag);
  State.addSuccessor(DefaultDest, DefaultArgs);
  for (size_t I = 0; I != CaseDests.size(); ++I)
    State.addSuccessor(CaseDests[I], CaseArgs[I]);
  std::vector<Attribute *> CaseAttrs;
  for (int64_t C : Cases)
    CaseAttrs.push_back(B.getContext().getI64Attr(C));
  State.addAttribute("cases",
                     B.getContext().getArrayAttr(std::move(CaseAttrs)));
  return B.create(State);
}
