//===- Cf.h - unstructured control flow dialect -----------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cf` dialect: flat-CFG terminators. This is the "traditional
/// SSA-based IR without regions" target of Section IV-C — lowering rgn to
/// cf "forgets the extra structure" of regions: known-region runs become
/// branches, select/switch-driven runs become conditional branches and
/// jump tables.
///
/// Ops:
///   cf.br [^dest(args)]
///   cf.cond_br %cond [^true(args), ^false(args)]
///   cf.switch %flag [^default(args), ^case0(args), ...] {cases = [...]}
///
//===----------------------------------------------------------------------===//

#ifndef LZ_DIALECT_CF_H
#define LZ_DIALECT_CF_H

#include "ir/Builder.h"

#include <cstdint>
#include <span>

namespace lz::cf {

/// Registers cf.br / cf.cond_br / cf.switch.
void registerCfDialect(Context &Ctx);

Operation *buildBr(OpBuilder &B, Block *Dest, std::span<Value *const> Args);

Operation *buildCondBr(OpBuilder &B, Value *Cond, Block *TrueDest,
                       std::span<Value *const> TrueArgs, Block *FalseDest,
                       std::span<Value *const> FalseArgs);

/// Successor 0 is the default destination, successors 1..N the cases.
Operation *buildSwitchBr(OpBuilder &B, Value *Flag,
                         std::span<int64_t const> Cases, Block *DefaultDest,
                         std::span<Value *const> DefaultArgs,
                         std::span<Block *const> CaseDests,
                         std::span<std::vector<Value *> const> CaseArgs);

} // namespace lz::cf

#endif // LZ_DIALECT_CF_H
