//===- Func.h - functions, calls and returns --------------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `func` dialect: module-level functions, direct calls and returns.
/// `func.call` may carry a `musttail` unit attribute — the analogue of the
/// LLVM musttail annotation the paper relies on for guaranteed tail call
/// elimination (Section III-E); the VM honours it by reusing the frame.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_DIALECT_FUNC_H
#define LZ_DIALECT_FUNC_H

#include "ir/Builder.h"

#include <span>
#include <string_view>

namespace lz::func {

/// Registers func.func / func.call / func.return.
void registerFuncDialect(Context &Ctx);

/// Creates a `func.func` named \p Name of type \p Ty with an entry block
/// whose arguments mirror the inputs. The op is appended to \p Module.
Operation *buildFunc(Context &Ctx, Operation *Module, std::string_view Name,
                     FunctionType *Ty);

/// Returns the declared type of a func.func.
FunctionType *getFuncType(Operation *FuncOp);

/// Returns the symbol name of a func.func.
std::string_view getFuncName(Operation *FuncOp);

/// Returns the body region's entry block.
Block *getFuncEntryBlock(Operation *FuncOp);

/// Builds a direct call to \p Callee. When \p MustTail is set the call is
/// required to be a tail call (callee result feeds the enclosing return).
Operation *buildCall(OpBuilder &B, std::string_view Callee,
                     std::span<Value *const> Args,
                     std::span<Type *const> ResultTypes,
                     bool MustTail = false);

Operation *buildReturn(OpBuilder &B, std::span<Value *const> Values);

} // namespace lz::func

#endif // LZ_DIALECT_FUNC_H
