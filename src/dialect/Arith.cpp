//===- Arith.cpp - integer arithmetic dialect ------------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "dialect/Arith.h"

#include <functional>

using namespace lz;
using namespace lz::arith;

Attribute *lz::arith::getConstantValue(Value *V) {
  Operation *Def = V->getDefiningOp();
  if (!Def || !Def->hasTrait(OpTrait_ConstantLike))
    return nullptr;
  return Def->getAttr("value");
}

namespace {

/// Wraps a signed 64-bit result to the bit width of \p Ty.
int64_t truncateToType(int64_t Value, Type *Ty) {
  unsigned Width = cast<IntegerType>(Ty)->getWidth();
  if (Width >= 64)
    return Value;
  uint64_t Mask = (1ULL << Width) - 1;
  uint64_t Bits = static_cast<uint64_t>(Value) & Mask;
  // Sign-extend from Width.
  if (Bits & (1ULL << (Width - 1)))
    Bits |= ~Mask;
  return static_cast<int64_t>(Bits);
}

LogicalResult verifyBinary(Operation *Op) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
    return failure();
  Type *Ty = Op->getOperand(0)->getType();
  if (Op->getOperand(1)->getType() != Ty ||
      Op->getResult(0)->getType() != Ty || !isa<IntegerType>(Ty))
    return failure();
  return success();
}

/// Registers one binary arith op with constant folding via \p Eval; the
/// callback returns false to refuse the fold (e.g. division by zero). The
/// same evaluator backs both hooks: Fold (operands must be materialized
/// constants in the IR) and EvalConstants (operand values supplied by a
/// dataflow client such as SCCP).
void registerBinaryOp(Context &Ctx, const char *Name,
                      bool (*Eval)(int64_t, int64_t, int64_t &)) {
  OpDef Def;
  Def.Name = Name;
  Def.Traits = OpTrait_Pure;
  Def.Verify = verifyBinary;
  auto EvalAttrs = [Eval](Operation *Op, Attribute *L, Attribute *R,
                          std::vector<Attribute *> &Out) -> LogicalResult {
    auto *LHS = dyn_cast_if_present<IntegerAttr>(L);
    auto *RHS = dyn_cast_if_present<IntegerAttr>(R);
    if (!LHS || !RHS)
      return failure();
    int64_t Result;
    if (!Eval(LHS->getValue(), RHS->getValue(), Result))
      return failure();
    Type *Ty = Op->getResult(0)->getType();
    Out.push_back(
        Op->getContext()->getIntegerAttr(Ty, truncateToType(Result, Ty)));
    return success();
  };
  Def.EvalConstants =
      [EvalAttrs](Operation *Op, std::span<Attribute *const> Operands,
                  std::vector<Attribute *> &Out) -> LogicalResult {
    return EvalAttrs(Op, Operands[0], Operands[1], Out);
  };
  Def.Fold = [EvalAttrs](Operation *Op,
                         std::vector<FoldResult> &Results) -> LogicalResult {
    std::vector<Attribute *> Out;
    if (failed(EvalAttrs(Op, getConstantValue(Op->getOperand(0)),
                         getConstantValue(Op->getOperand(1)), Out)))
      return failure();
    Results.emplace_back(Out[0]);
    return success();
  };
  Ctx.registerOp(std::move(Def));
}

bool evalCmp(CmpPredicate Pred, int64_t L, int64_t R) {
  switch (Pred) {
  case CmpPredicate::EQ:
    return L == R;
  case CmpPredicate::NE:
    return L != R;
  case CmpPredicate::SLT:
    return L < R;
  case CmpPredicate::SLE:
    return L <= R;
  case CmpPredicate::SGT:
    return L > R;
  case CmpPredicate::SGE:
    return L >= R;
  }
  return false;
}

} // namespace

void lz::arith::registerArithDialect(Context &Ctx) {
  // arith.constant
  {
    OpDef Def;
    Def.Name = "arith.constant";
    Def.Traits = OpTrait_Pure | OpTrait_ConstantLike;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 0 || Op->getNumResults() != 1)
        return failure();
      auto *ValueAttr = Op->getAttrOfType<IntegerAttr>("value");
      if (!ValueAttr || ValueAttr->getType() != Op->getResult(0)->getType())
        return failure();
      return success();
    };
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      // Constants "fold to themselves" so CSE-by-fold can dedupe them; the
      // greedy driver recognizes self-folds and leaves the op in place.
      Results.emplace_back(Op->getAttr("value"));
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }

  registerBinaryOp(Ctx, "arith.addi", [](int64_t L, int64_t R, int64_t &Out) {
    Out = static_cast<int64_t>(static_cast<uint64_t>(L) +
                               static_cast<uint64_t>(R));
    return true;
  });
  registerBinaryOp(Ctx, "arith.subi", [](int64_t L, int64_t R, int64_t &Out) {
    Out = static_cast<int64_t>(static_cast<uint64_t>(L) -
                               static_cast<uint64_t>(R));
    return true;
  });
  registerBinaryOp(Ctx, "arith.muli", [](int64_t L, int64_t R, int64_t &Out) {
    Out = static_cast<int64_t>(static_cast<uint64_t>(L) *
                               static_cast<uint64_t>(R));
    return true;
  });
  registerBinaryOp(Ctx, "arith.divsi", [](int64_t L, int64_t R, int64_t &Out) {
    if (R == 0 || (L == INT64_MIN && R == -1))
      return false;
    Out = L / R;
    return true;
  });
  registerBinaryOp(Ctx, "arith.remsi", [](int64_t L, int64_t R, int64_t &Out) {
    if (R == 0 || (L == INT64_MIN && R == -1))
      return false;
    Out = L % R;
    return true;
  });
  registerBinaryOp(Ctx, "arith.andi", [](int64_t L, int64_t R, int64_t &Out) {
    Out = L & R;
    return true;
  });
  registerBinaryOp(Ctx, "arith.ori", [](int64_t L, int64_t R, int64_t &Out) {
    Out = L | R;
    return true;
  });
  registerBinaryOp(Ctx, "arith.xori", [](int64_t L, int64_t R, int64_t &Out) {
    Out = L ^ R;
    return true;
  });

  // arith.cmpi
  {
    OpDef Def;
    Def.Name = "arith.cmpi";
    Def.Traits = OpTrait_Pure;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 2 || Op->getNumResults() != 1)
        return failure();
      if (Op->getOperand(0)->getType() != Op->getOperand(1)->getType())
        return failure();
      auto *ResTy = dyn_cast<IntegerType>(Op->getResult(0)->getType());
      if (!ResTy || ResTy->getWidth() != 1)
        return failure();
      if (!Op->getAttrOfType<IntegerAttr>("predicate"))
        return failure();
      return success();
    };
    Def.EvalConstants =
        [](Operation *Op, std::span<Attribute *const> Operands,
           std::vector<Attribute *> &Out) -> LogicalResult {
      auto *LHS = dyn_cast_if_present<IntegerAttr>(Operands[0]);
      auto *RHS = dyn_cast_if_present<IntegerAttr>(Operands[1]);
      if (!LHS || !RHS)
        return failure();
      auto Pred = static_cast<CmpPredicate>(
          Op->getAttrOfType<IntegerAttr>("predicate")->getValue());
      Out.push_back(Op->getContext()->getBoolAttr(
          evalCmp(Pred, LHS->getValue(), RHS->getValue())));
      return success();
    };
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      auto *LHS = dyn_cast_if_present<IntegerAttr>(
          getConstantValue(Op->getOperand(0)));
      auto *RHS = dyn_cast_if_present<IntegerAttr>(
          getConstantValue(Op->getOperand(1)));
      auto Pred = static_cast<CmpPredicate>(
          Op->getAttrOfType<IntegerAttr>("predicate")->getValue());
      Context *Ctx = Op->getContext();
      if (LHS && RHS) {
        bool Out = evalCmp(Pred, LHS->getValue(), RHS->getValue());
        Results.emplace_back(Ctx->getBoolAttr(Out));
        return success();
      }
      // x == x, x != x on identical SSA values.
      if (Op->getOperand(0) == Op->getOperand(1)) {
        if (Pred == CmpPredicate::EQ || Pred == CmpPredicate::SLE ||
            Pred == CmpPredicate::SGE) {
          Results.emplace_back(Ctx->getBoolAttr(true));
          return success();
        }
        if (Pred == CmpPredicate::NE || Pred == CmpPredicate::SLT ||
            Pred == CmpPredicate::SGT) {
          Results.emplace_back(Ctx->getBoolAttr(false));
          return success();
        }
      }
      return failure();
    };
    Ctx.registerOp(std::move(Def));
  }

  // arith.select — the 2-way multiplexer. This op's folds implement the
  // paper's "Case Elimination" (select of a constant condition) and the last
  // step of "Common Branch Elimination" (select of two equal region values),
  // Figure 1 B/C and Section IV-B.
  {
    OpDef Def;
    Def.Name = "arith.select";
    Def.Traits = OpTrait_Pure;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 3 || Op->getNumResults() != 1)
        return failure();
      auto *CondTy = dyn_cast<IntegerType>(Op->getOperand(0)->getType());
      if (!CondTy || CondTy->getWidth() != 1)
        return failure();
      Type *Ty = Op->getOperand(1)->getType();
      if (Op->getOperand(2)->getType() != Ty ||
          Op->getResult(0)->getType() != Ty)
        return failure();
      return success();
    };
    Def.EvalConstants =
        [](Operation *Op, std::span<Attribute *const> Operands,
           std::vector<Attribute *> &Out) -> LogicalResult {
      (void)Op;
      auto *Cond = dyn_cast_if_present<IntegerAttr>(Operands[0]);
      if (!Cond)
        return failure();
      Attribute *Picked = Cond->getValue() ? Operands[1] : Operands[2];
      if (!Picked)
        return failure();
      Out.push_back(Picked);
      return success();
    };
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      // select c, x, x -> x
      if (Op->getOperand(1) == Op->getOperand(2)) {
        Results.emplace_back(Op->getOperand(1));
        return success();
      }
      // select true/false, a, b -> a/b
      if (auto *Cond = dyn_cast_if_present<IntegerAttr>(
              getConstantValue(Op->getOperand(0)))) {
        Results.emplace_back(Cond->getValue() ? Op->getOperand(1)
                                              : Op->getOperand(2));
        return success();
      }
      return failure();
    };
    Ctx.registerOp(std::move(Def));
  }

  // arith.switch — the N-way value multiplexer.
  {
    OpDef Def;
    Def.Name = "arith.switch";
    Def.Traits = OpTrait_Pure;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() < 2 || Op->getNumResults() != 1)
        return failure();
      if (!isa<IntegerType>(Op->getOperand(0)->getType()))
        return failure();
      auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
      if (!Cases)
        return failure();
      // Operands: flag, case values..., default value.
      if (Op->getNumOperands() != Cases->size() + 2)
        return failure();
      Type *Ty = Op->getResult(0)->getType();
      for (unsigned I = 1; I != Op->getNumOperands(); ++I)
        if (Op->getOperand(I)->getType() != Ty)
          return failure();
      return success();
    };
    Def.EvalConstants =
        [](Operation *Op, std::span<Attribute *const> Operands,
           std::vector<Attribute *> &Out) -> LogicalResult {
      auto *Flag = dyn_cast_if_present<IntegerAttr>(Operands[0]);
      if (!Flag)
        return failure();
      auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
      Attribute *Picked = Operands[Operands.size() - 1]; // default value
      for (size_t I = 0; I != Cases->size(); ++I) {
        auto *CaseAttr = cast<IntegerAttr>(Cases->getValue()[I]);
        if (CaseAttr->getValue() == Flag->getValue()) {
          Picked = Operands[1 + I];
          break;
        }
      }
      if (!Picked)
        return failure();
      Out.push_back(Picked);
      return success();
    };
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
      unsigned NumCases = static_cast<unsigned>(Cases->size());
      // All selectable values identical -> that value.
      bool AllSame = true;
      for (unsigned I = 2; I != Op->getNumOperands(); ++I)
        AllSame &= Op->getOperand(I) == Op->getOperand(1);
      if (AllSame) {
        Results.emplace_back(Op->getOperand(1));
        return success();
      }
      // Constant flag -> matching case (or default).
      if (auto *Flag = dyn_cast_if_present<IntegerAttr>(
              getConstantValue(Op->getOperand(0)))) {
        for (unsigned I = 0; I != NumCases; ++I) {
          auto *CaseAttr = cast<IntegerAttr>(Cases->getValue()[I]);
          if (CaseAttr->getValue() == Flag->getValue()) {
            Results.emplace_back(Op->getOperand(1 + I));
            return success();
          }
        }
        Results.emplace_back(Op->getOperand(Op->getNumOperands() - 1));
        return success();
      }
      return failure();
    };
    Ctx.registerOp(std::move(Def));
  }

  // Materialize folded attributes as constants. lp registers its own
  // materializer that also understands !lp.t; it chains to this one.
  Ctx.setConstantMaterializer(
      [](OpBuilder &B, Attribute *Attr, Type *Ty) -> Operation * {
        auto *IntAttr = dyn_cast<IntegerAttr>(Attr);
        if (!IntAttr || !isa<IntegerType>(Ty))
          return nullptr;
        return buildConstant(B, Ty, IntAttr->getValue());
      });
}

Operation *lz::arith::buildConstant(OpBuilder &B, Type *Ty, int64_t Value) {
  OperationState State(B.getContext(), "arith.constant");
  State.addAttribute("value", B.getContext().getIntegerAttr(Ty, Value));
  State.ResultTypes.push_back(Ty);
  return B.create(State);
}

Operation *lz::arith::buildBinary(OpBuilder &B, std::string_view Name,
                                  Value *LHS, Value *RHS) {
  OperationState State(B.getContext(), Name);
  State.Operands = {LHS, RHS};
  State.ResultTypes.push_back(LHS->getType());
  return B.create(State);
}

Operation *lz::arith::buildCmp(OpBuilder &B, CmpPredicate Pred, Value *LHS,
                               Value *RHS) {
  OperationState State(B.getContext(), "arith.cmpi");
  State.Operands = {LHS, RHS};
  State.ResultTypes.push_back(B.getContext().getI1());
  State.addAttribute("predicate",
                     B.getContext().getI64Attr(static_cast<int64_t>(Pred)));
  return B.create(State);
}

Operation *lz::arith::buildSelect(OpBuilder &B, Value *Cond, Value *TrueVal,
                                  Value *FalseVal) {
  OperationState State(B.getContext(), "arith.select");
  State.Operands = {Cond, TrueVal, FalseVal};
  State.ResultTypes.push_back(TrueVal->getType());
  return B.create(State);
}

Operation *lz::arith::buildSwitch(OpBuilder &B, Value *Flag,
                                  std::span<int64_t const> Cases,
                                  std::span<Value *const> CaseValues,
                                  Value *DefaultValue) {
  assert(Cases.size() == CaseValues.size() && "case/value count mismatch");
  OperationState State(B.getContext(), "arith.switch");
  State.Operands.push_back(Flag);
  State.Operands.insert(State.Operands.end(), CaseValues.begin(),
                        CaseValues.end());
  State.Operands.push_back(DefaultValue);
  State.ResultTypes.push_back(DefaultValue->getType());
  std::vector<Attribute *> CaseAttrs;
  for (int64_t C : Cases)
    CaseAttrs.push_back(B.getContext().getI64Attr(C));
  State.addAttribute("cases", B.getContext().getArrayAttr(std::move(CaseAttrs)));
  return B.create(State);
}
