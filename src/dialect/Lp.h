//===- Lp.h - the lp dialect: lambda-pure in SSA ----------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `lp` dialect (Figure 2 of the paper): a feature-complete SSA encoding
/// of LEAN4's λpure/λrc intermediate representation.
///
///   %v = lp.int {value}                      : () -> !lp.t
///   %v = lp.bigint {value}                   : () -> !lp.t
///   %v = lp.construct(%f...) {tag}           : (!lp.t...) -> !lp.t
///   %t = lp.getlabel(%v)                     : (!lp.t) -> i8
///   %f = lp.project(%v) {index}              : (!lp.t) -> !lp.t
///   %c = lp.pap(%a...) {callee}              : (!lp.t...) -> !lp.t
///   %r = lp.papextend(%c, %a...)             : (!lp.t, !lp.t...) -> !lp.t
///   lp.inc(%v) / lp.dec(%v)                  : (!lp.t) -> ()
///   lp.switch(%tag) (rgn0, ..., default) {cases}   [terminator]
///   lp.joinpoint (after(params), pre) {label}      [terminator]
///   lp.jump(%args...) {label}                      [terminator]
///   lp.return(%v...)                               [terminator]
///
/// Control-flow ops hold single-block regions; `lp.switch`'s last region is
/// always the @default arm. `lp.jump` names the label of a lexically
/// enclosing `lp.joinpoint` — the "local, named closures" of Section III-B.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_DIALECT_LP_H
#define LZ_DIALECT_LP_H

#include "ir/Builder.h"
#include "support/BigInt.h"

#include <cstdint>
#include <span>
#include <string_view>

namespace lz::lp {

/// Registers all lp ops; also extends the constant materializer so folds
/// producing IntegerAttr/BigIntAttr of type !lp.t become lp.int/lp.bigint.
void registerLpDialect(Context &Ctx);

Operation *buildInt(OpBuilder &B, int64_t Value);
Operation *buildBigInt(OpBuilder &B, const BigInt &Value);
Operation *buildConstruct(OpBuilder &B, int64_t Tag,
                          std::span<Value *const> Fields);
Operation *buildGetLabel(OpBuilder &B, Value *V);
Operation *buildProject(OpBuilder &B, Value *V, int64_t Index);
Operation *buildPap(OpBuilder &B, std::string_view Callee,
                    std::span<Value *const> Args);
Operation *buildPapExtend(OpBuilder &B, Value *Closure,
                          std::span<Value *const> Args);
Operation *buildInc(OpBuilder &B, Value *V);
Operation *buildDec(OpBuilder &B, Value *V);
Operation *buildReturn(OpBuilder &B, std::span<Value *const> Values);
Operation *buildUnreachable(OpBuilder &B);

/// Builds `lp.switch` with `Cases.size() + 1` empty single-block regions
/// (the final one is @default). Callers fill the regions afterwards.
Operation *buildSwitch(OpBuilder &B, Value *Tag,
                       std::span<int64_t const> Cases);

/// Builds `lp.joinpoint @Label` with an after-jump region (entry block args
/// of types \p ParamTypes) and an empty pre-jump region.
Operation *buildJoinPoint(OpBuilder &B, std::string_view Label,
                          std::span<Type *const> ParamTypes);

Operation *buildJump(OpBuilder &B, std::string_view Label,
                     std::span<Value *const> Args);

/// True iff executing \p Op materializes a fresh heap cell per run:
/// `lp.bigint` always, and `lp.int` whose value falls outside the 63-bit
/// small-int boxing range. Such constants are Pure in the IR sense but
/// must never be CSE'd once explicit reference counting is in effect —
/// merging two of them leaves one allocation consumed by both use sites.
bool constantAllocates(Operation *Op);

/// Accessors.
Region &getSwitchCaseRegion(Operation *SwitchOp, unsigned I);
Region &getSwitchDefaultRegion(Operation *SwitchOp);
Region &getJoinPointBodyRegion(Operation *JoinPoint);   // after-jump
Region &getJoinPointPreRegion(Operation *JoinPoint);    // pre-jump

} // namespace lz::lp

#endif // LZ_DIALECT_LP_H
