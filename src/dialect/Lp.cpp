//===- Lp.cpp - the lp dialect: lambda-pure in SSA ---------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "dialect/Lp.h"

#include "dialect/Arith.h"
#include "dialect/Func.h"
#include "ir/Module.h"
#include "rewrite/Pattern.h"
#include "runtime/Object.h"

using namespace lz;
using namespace lz::lp;

namespace {

bool allOperandsBoxed(Operation *Op) {
  for (unsigned I = 0; I != Op->getNumOperands(); ++I)
    if (!isa<BoxType>(Op->getOperand(I)->getType()))
      return false;
  return true;
}

LogicalResult verifySingleBoxResult(Operation *Op) {
  return success(Op->getNumResults() == 1 &&
                 isa<BoxType>(Op->getResult(0)->getType()));
}

/// papextend(pap @f(a...), b...) -> pap @f(a..., b...) while the combined
/// argument count stays strictly below @f's arity (a saturating extend
/// *invokes* @f, so collapsing it would change semantics). Requires the
/// inner pap to have this extend as its only use — the collapse rebuilds
/// the closure at the extend's position, which is RC-neutral: the new pap
/// consumes exactly the references the old pap and the extend consumed.
class CollapsePapExtendOfPap : public RewritePattern {
public:
  CollapsePapExtendOfPap() : RewritePattern("lp.papextend") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Value *Closure = Op->getOperand(0);
    Operation *Pap = Closure->getDefiningOp();
    if (!Pap || Pap->getName() != "lp.pap" || !Closure->hasOneUse())
      return failure();
    auto *Callee = Pap->getAttrOfType<SymbolRefAttr>("callee");
    if (!Callee)
      return failure();

    // Resolve the callee's arity from the enclosing module; unknown or
    // saturating-or-over chains are left for the runtime apply path.
    Operation *Scope = Op->getParentOp();
    while (Scope && !Scope->hasTrait(OpTrait_SymbolTable))
      Scope = Scope->getParentOp();
    if (!Scope)
      return failure();
    Operation *CalleeFn = lookupSymbol(Scope, Callee->getValue());
    if (!CalleeFn || CalleeFn->getName() != "func.func")
      return failure();
    unsigned Arity = static_cast<unsigned>(
        func::getFuncType(CalleeFn)->getInputs().size());
    unsigned Combined = Pap->getNumOperands() + Op->getNumOperands() - 1;
    if (Combined >= Arity)
      return failure();

    std::vector<Value *> Args(Pap->getOperands().begin(),
                              Pap->getOperands().end());
    for (unsigned I = 1; I != Op->getNumOperands(); ++I)
      Args.push_back(Op->getOperand(I));
    Rewriter.setInsertionPoint(Op);
    Operation *Merged = buildPap(Rewriter, Callee->getValue(), Args);
    Value *Result = Merged->getResult(0);
    Rewriter.replaceOp(Op, {&Result, 1});
    Rewriter.eraseOp(Pap);
    return success();
  }
};

} // namespace

void lz::lp::registerLpDialect(Context &Ctx) {
  // lp.int — machine-word sized integer constant (boxed scalar).
  {
    OpDef Def;
    Def.Name = "lp.int";
    Def.Traits = OpTrait_Pure | OpTrait_ConstantLike;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 0 ||
          failed(verifySingleBoxResult(Op)))
        return failure();
      return success(Op->getAttrOfType<IntegerAttr>("value") != nullptr);
    };
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      Results.emplace_back(Op->getAttr("value"));
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.bigint — arbitrary precision constant, lowered to runtime calls.
  {
    OpDef Def;
    Def.Name = "lp.bigint";
    Def.Traits = OpTrait_Pure | OpTrait_ConstantLike;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 0 || failed(verifySingleBoxResult(Op)))
        return failure();
      return success(Op->getAttrOfType<BigIntAttr>("value") != nullptr);
    };
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      Results.emplace_back(Op->getAttr("value"));
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.construct — data constructor (tagged union cell). Allocation: safe
  // to erase when dead, but NOT safe to CSE once explicit RC is present
  // (merging two allocations would double-release one cell).
  {
    OpDef Def;
    Def.Name = "lp.construct";
    Def.Traits = OpTrait_Allocates;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (failed(verifySingleBoxResult(Op)) || !allOperandsBoxed(Op))
        return failure();
      return success(Op->getAttrOfType<IntegerAttr>("tag") != nullptr);
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.getlabel — extract the constructor tag (pure read of an immutable
  // header).
  {
    OpDef Def;
    Def.Name = "lp.getlabel";
    Def.Traits = OpTrait_Pure;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 1 || Op->getNumResults() != 1)
        return failure();
      if (!isa<BoxType>(Op->getOperand(0)->getType()))
        return failure();
      auto *ResTy = dyn_cast<IntegerType>(Op->getResult(0)->getType());
      return success(ResTy && ResTy->getWidth() == 8);
    };
    // Fold: getlabel of a known construct -> its tag.
    Def.Fold = [](Operation *Op,
                  std::vector<FoldResult> &Results) -> LogicalResult {
      Operation *DefOp = Op->getOperand(0)->getDefiningOp();
      if (!DefOp || DefOp->getName() != "lp.construct")
        return failure();
      auto *Tag = DefOp->getAttrOfType<IntegerAttr>("tag");
      Results.emplace_back(
          Op->getContext()->getIntegerAttr(Op->getResult(0)->getType(),
                                           Tag->getValue()));
      return success();
    };
    // SCCP hook. A scalar's tag is its value (all-nullary inductives are
    // erased to scalars), so a lattice-constant operand folds; and since
    // the hook receives the operation, a getlabel whose operand is a
    // non-constant but statically-known lp.construct folds to that
    // construct's tag attribute even when the operand itself is
    // overdefined (the operand slot is then null — see OpDef docs).
    Def.EvalConstants =
        [](Operation *Op, std::span<Attribute *const> Operands,
           std::vector<Attribute *> &Out) -> LogicalResult {
      Type *ResTy = Op->getResult(0)->getType();
      if (auto *Scalar = dyn_cast_if_present<IntegerAttr>(Operands[0])) {
        Out.push_back(
            Op->getContext()->getIntegerAttr(ResTy, Scalar->getValue()));
        return success();
      }
      Operation *DefOp = Op->getOperand(0)->getDefiningOp();
      if (!DefOp || DefOp->getName() != "lp.construct")
        return failure();
      auto *Tag = DefOp->getAttrOfType<IntegerAttr>("tag");
      Out.push_back(Op->getContext()->getIntegerAttr(ResTy, Tag->getValue()));
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.project — extract field #index (pure read; result is borrowed).
  {
    OpDef Def;
    Def.Name = "lp.project";
    Def.Traits = OpTrait_Pure;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 1 || failed(verifySingleBoxResult(Op)) ||
          !allOperandsBoxed(Op))
        return failure();
      return success(Op->getAttrOfType<IntegerAttr>("index") != nullptr);
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.pap — partial application: allocates a closure.
  {
    OpDef Def;
    Def.Name = "lp.pap";
    Def.Traits = OpTrait_Allocates;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (failed(verifySingleBoxResult(Op)) || !allOperandsBoxed(Op))
        return failure();
      return success(Op->getAttrOfType<SymbolRefAttr>("callee") != nullptr);
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.papextend — extend a closure; may invoke the function if saturated,
  // so it carries no purity traits at all.
  {
    OpDef Def;
    Def.Name = "lp.papextend";
    Def.Verify = [](Operation *Op) -> LogicalResult {
      return success(Op->getNumOperands() >= 1 &&
                     succeeded(verifySingleBoxResult(Op)) &&
                     allOperandsBoxed(Op));
    };
    Def.CanonicalizationPatterns = [](PatternSet &Patterns) {
      Patterns.add<CollapsePapExtendOfPap>();
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.inc / lp.dec — reference count adjustments (side effects).
  for (const char *Name : {"lp.inc", "lp.dec"}) {
    OpDef Def;
    Def.Name = Name;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      return success(Op->getNumOperands() == 1 && Op->getNumResults() == 0 &&
                     allOperandsBoxed(Op));
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.return — terminator returning from the enclosing function, wherever
  // it appears in the nested control flow.
  {
    OpDef Def;
    Def.Name = "lp.return";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      return success(Op->getNumResults() == 0);
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.unreachable — diverging terminator for impossible match arms; the
  // VM traps if it is ever executed.
  {
    OpDef Def;
    Def.Name = "lp.unreachable";
    Def.Traits = OpTrait_IsTerminator;
    Ctx.registerOp(std::move(Def));
  }

  // lp.switch — pattern match on an integer tag. Regions are the case
  // right-hand sides; the final region is the @default arm (Figure 2).
  {
    OpDef Def;
    Def.Name = "lp.switch";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() != 1 || Op->getNumResults() != 0)
        return failure();
      if (!isa<IntegerType>(Op->getOperand(0)->getType()))
        return failure();
      auto *Cases = Op->getAttrOfType<ArrayAttr>("cases");
      if (!Cases || Op->getNumRegions() != Cases->size() + 1)
        return failure();
      for (unsigned I = 0; I != Op->getNumRegions(); ++I) {
        Region &R = Op->getRegion(I);
        if (R.empty() || R.getEntryBlock()->getNumArguments() != 0)
          return failure();
      }
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.joinpoint — region 0 is the after-jump body (label target, with
  // parameters as entry block arguments); region 1 is the pre-jump code
  // executed first (Figure 2 / Figure 5).
  {
    OpDef Def;
    Def.Name = "lp.joinpoint";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumRegions() != 2 || Op->getNumResults() != 0 ||
          Op->getNumOperands() != 0)
        return failure();
      if (!Op->getAttrOfType<StringAttr>("label"))
        return failure();
      if (Op->getRegion(0).empty() || Op->getRegion(1).empty())
        return failure();
      // The pre-jump region takes no arguments.
      return success(
          Op->getRegion(1).getEntryBlock()->getNumArguments() == 0);
    };
    Ctx.registerOp(std::move(Def));
  }

  // lp.jump — jump to an enclosing joinpoint's label with arguments.
  {
    OpDef Def;
    Def.Name = "lp.jump";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      auto *Label = Op->getAttrOfType<StringAttr>("label");
      if (!Label || Op->getNumResults() != 0)
        return failure();
      // The label must name a lexically enclosing joinpoint, and arity must
      // match its parameter list.
      for (Operation *Parent = Op->getParentOp(); Parent;
           Parent = Parent->getParentOp()) {
        if (Parent->getName() != "lp.joinpoint")
          continue;
        auto *ParentLabel = Parent->getAttrOfType<StringAttr>("label");
        if (!ParentLabel || ParentLabel->getValue() != Label->getValue())
          continue;
        Block *Target = Parent->getRegion(0).getEntryBlock();
        return success(Target->getNumArguments() == Op->getNumOperands());
      }
      // Detached fragments (under construction) get a pass; the check
      // re-runs once the op is nested in a function.
      return success(Op->getParentOp() == nullptr);
    };
    Ctx.registerOp(std::move(Def));
  }

  // Chain a materializer handling !lp.t constants on top of arith's.
  auto Prev = Ctx.getConstantMaterializer();
  Ctx.setConstantMaterializer(
      [Prev](OpBuilder &B, Attribute *Attr, Type *Ty) -> Operation * {
        if (isa<BoxType>(Ty)) {
          if (auto *IntAttr = dyn_cast<IntegerAttr>(Attr))
            return buildInt(B, IntAttr->getValue());
          if (auto *Big = dyn_cast<BigIntAttr>(Attr))
            return buildBigInt(B, Big->getValue());
          return nullptr;
        }
        return Prev ? Prev(B, Attr, Ty) : nullptr;
      });
}

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

Operation *lz::lp::buildInt(OpBuilder &B, int64_t Value) {
  OperationState State(B.getContext(), "lp.int");
  State.addAttribute("value", B.getContext().getI64Attr(Value));
  State.ResultTypes.push_back(B.getContext().getBoxType());
  return B.create(State);
}

Operation *lz::lp::buildBigInt(OpBuilder &B, const BigInt &Value) {
  OperationState State(B.getContext(), "lp.bigint");
  State.addAttribute("value", B.getContext().getBigIntAttr(Value));
  State.ResultTypes.push_back(B.getContext().getBoxType());
  return B.create(State);
}

bool lz::lp::constantAllocates(Operation *Op) {
  std::string_view Name = Op->getName();
  if (Name == "lp.bigint")
    return true;
  if (Name == "lp.int") {
    int64_t V = Op->getAttrOfType<IntegerAttr>("value")->getValue();
    return V < rt::MinSmallInt || V > rt::MaxSmallInt;
  }
  return false;
}

Operation *lz::lp::buildConstruct(OpBuilder &B, int64_t Tag,
                                  std::span<Value *const> Fields) {
  OperationState State(B.getContext(), "lp.construct");
  State.addOperands(Fields);
  State.addAttribute("tag", B.getContext().getI64Attr(Tag));
  State.ResultTypes.push_back(B.getContext().getBoxType());
  return B.create(State);
}

Operation *lz::lp::buildGetLabel(OpBuilder &B, Value *V) {
  OperationState State(B.getContext(), "lp.getlabel");
  State.Operands.push_back(V);
  State.ResultTypes.push_back(B.getContext().getI8());
  return B.create(State);
}

Operation *lz::lp::buildProject(OpBuilder &B, Value *V, int64_t Index) {
  OperationState State(B.getContext(), "lp.project");
  State.Operands.push_back(V);
  State.addAttribute("index", B.getContext().getI64Attr(Index));
  State.ResultTypes.push_back(B.getContext().getBoxType());
  return B.create(State);
}

Operation *lz::lp::buildPap(OpBuilder &B, std::string_view Callee,
                            std::span<Value *const> Args) {
  OperationState State(B.getContext(), "lp.pap");
  State.addOperands(Args);
  State.addAttribute("callee", B.getContext().getSymbolRefAttr(Callee));
  State.ResultTypes.push_back(B.getContext().getBoxType());
  return B.create(State);
}

Operation *lz::lp::buildPapExtend(OpBuilder &B, Value *Closure,
                                  std::span<Value *const> Args) {
  OperationState State(B.getContext(), "lp.papextend");
  State.Operands.push_back(Closure);
  State.addOperands(Args);
  State.ResultTypes.push_back(B.getContext().getBoxType());
  return B.create(State);
}

Operation *lz::lp::buildInc(OpBuilder &B, Value *V) {
  OperationState State(B.getContext(), "lp.inc");
  State.Operands.push_back(V);
  return B.create(State);
}

Operation *lz::lp::buildDec(OpBuilder &B, Value *V) {
  OperationState State(B.getContext(), "lp.dec");
  State.Operands.push_back(V);
  return B.create(State);
}

Operation *lz::lp::buildReturn(OpBuilder &B, std::span<Value *const> Values) {
  OperationState State(B.getContext(), "lp.return");
  State.addOperands(Values);
  return B.create(State);
}

Operation *lz::lp::buildUnreachable(OpBuilder &B) {
  OperationState State(B.getContext(), "lp.unreachable");
  return B.create(State);
}

Operation *lz::lp::buildSwitch(OpBuilder &B, Value *Tag,
                               std::span<int64_t const> Cases) {
  OperationState State(B.getContext(), "lp.switch");
  State.Operands.push_back(Tag);
  State.NumRegions = static_cast<unsigned>(Cases.size()) + 1;
  std::vector<Attribute *> CaseAttrs;
  for (int64_t C : Cases)
    CaseAttrs.push_back(B.getContext().getI64Attr(C));
  State.addAttribute("cases",
                     B.getContext().getArrayAttr(std::move(CaseAttrs)));
  Operation *Op = B.create(State);
  for (unsigned I = 0; I != Op->getNumRegions(); ++I)
    Op->getRegion(I).emplaceBlock();
  return Op;
}

Operation *lz::lp::buildJoinPoint(OpBuilder &B, std::string_view Label,
                                  std::span<Type *const> ParamTypes) {
  OperationState State(B.getContext(), "lp.joinpoint");
  State.NumRegions = 2;
  State.addAttribute("label", B.getContext().getStringAttr(Label));
  Operation *Op = B.create(State);
  Block *Body = Op->getRegion(0).emplaceBlock();
  for (Type *Ty : ParamTypes)
    Body->addArgument(Ty);
  Op->getRegion(1).emplaceBlock();
  return Op;
}

Operation *lz::lp::buildJump(OpBuilder &B, std::string_view Label,
                             std::span<Value *const> Args) {
  OperationState State(B.getContext(), "lp.jump");
  State.addOperands(Args);
  State.addAttribute("label", B.getContext().getStringAttr(Label));
  return B.create(State);
}

Region &lz::lp::getSwitchCaseRegion(Operation *SwitchOp, unsigned I) {
  assert(I + 1 < SwitchOp->getNumRegions() && "case index out of range");
  return SwitchOp->getRegion(I);
}

Region &lz::lp::getSwitchDefaultRegion(Operation *SwitchOp) {
  return SwitchOp->getRegion(SwitchOp->getNumRegions() - 1);
}

Region &lz::lp::getJoinPointBodyRegion(Operation *JoinPoint) {
  return JoinPoint->getRegion(0);
}

Region &lz::lp::getJoinPointPreRegion(Operation *JoinPoint) {
  return JoinPoint->getRegion(1);
}
