//===- Dialects.cpp - registration of all dialects ---------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "dialect/Dialects.h"

#include "dialect/Arith.h"
#include "dialect/Cf.h"
#include "dialect/Func.h"
#include "dialect/Lp.h"
#include "dialect/Rgn.h"

void lz::registerAllDialects(Context &Ctx) {
  arith::registerArithDialect(Ctx);
  cf::registerCfDialect(Ctx);
  func::registerFuncDialect(Ctx);
  lp::registerLpDialect(Ctx);
  rgn::registerRgnDialect(Ctx);
}
