//===- Rgn.h - the rgn dialect: regions as SSA values -----------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `rgn` dialect — the paper's key innovation (Section IV). Two ops:
///
///   %r = rgn.val ({ region })  : !rgn.region<(T...)>
///       Names a region as an SSA value: a suspended sub-computation,
///       conceptually a continuation. Pure, so classical DCE gives "dead
///       region elimination" and region-aware CSE gives "global region
///       numbering" for free.
///
///   rgn.run %r (%args...)      [terminator]
///       Transfers control to the region named by %r, passing %args to its
///       entry block arguments — conceptually invoking a continuation.
///
/// Structural constraint (enforced by the verifier): a rgn.val result may
/// only be used by `arith.select`, `arith.switch` (whose results are again
/// region-typed and subject to the same rule) and `rgn.run`. It may not be
/// passed to functions, stored, or returned — this is what keeps every use
/// statically analyzable (Section IV: "We do not allow rgn.val operations
/// to interact with other operations").
///
//===----------------------------------------------------------------------===//

#ifndef LZ_DIALECT_RGN_H
#define LZ_DIALECT_RGN_H

#include "ir/Builder.h"

#include <span>

namespace lz::rgn {

/// Registers rgn.val and rgn.run.
void registerRgnDialect(Context &Ctx);

/// Builds `rgn.val` with one region containing one entry block whose
/// arguments have \p ParamTypes; result type is !rgn.region<(ParamTypes)>.
Operation *buildVal(OpBuilder &B, std::span<Type *const> ParamTypes);

/// Builds the `rgn.run` terminator.
Operation *buildRun(OpBuilder &B, Value *RegionVal,
                    std::span<Value *const> Args);

/// Returns the single body region of a rgn.val.
Region &getValBody(Operation *ValOp);

/// Walks through select/switch chains: if \p V is ultimately a unique
/// rgn.val (e.g. after folding), returns that op, else null.
Operation *resolveKnownRegion(Value *V);

} // namespace lz::rgn

#endif // LZ_DIALECT_RGN_H
