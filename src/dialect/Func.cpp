//===- Func.cpp - functions, calls and returns ------------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "dialect/Func.h"

#include "ir/Module.h"

using namespace lz;
using namespace lz::func;

void lz::func::registerFuncDialect(Context &Ctx) {
  {
    OpDef Def;
    Def.Name = "func.func";
    Def.Traits = OpTrait_IsolatedFromAbove;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumRegions() != 1 || Op->getNumResults() != 0 ||
          Op->getNumOperands() != 0)
        return failure();
      if (!Op->getAttrOfType<StringAttr>("sym_name"))
        return failure();
      auto *TyAttr = Op->getAttrOfType<TypeAttr>("function_type");
      if (!TyAttr || !isa<FunctionType>(TyAttr->getValue()))
        return failure();
      auto *FnTy = cast<FunctionType>(TyAttr->getValue());
      Region &Body = Op->getRegion(0);
      if (Body.empty())
        return success(); // declaration (runtime builtin)
      Block *Entry = Body.getEntryBlock();
      if (Entry->getNumArguments() != FnTy->getInputs().size())
        return failure();
      for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
        if (Entry->getArgument(I)->getType() != FnTy->getInputs()[I])
          return failure();
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }
  {
    OpDef Def;
    Def.Name = "func.call";
    Def.Verify = [](Operation *Op) -> LogicalResult {
      return success(Op->getAttrOfType<SymbolRefAttr>("callee") != nullptr);
    };
    Ctx.registerOp(std::move(Def));
  }
  {
    OpDef Def;
    Def.Name = "func.return";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      return success(Op->getNumResults() == 0 &&
                     Op->getNumSuccessors() == 0);
    };
    Ctx.registerOp(std::move(Def));
  }
}

Operation *lz::func::buildFunc(Context &Ctx, Operation *Module,
                               std::string_view Name, FunctionType *Ty) {
  OperationState State(Ctx, "func.func");
  State.NumRegions = 1;
  State.addAttribute("sym_name", Ctx.getStringAttr(Name));
  State.addAttribute("function_type", Ctx.getTypeAttr(Ty));
  Operation *FuncOp = Operation::create(State);
  Block *Entry = FuncOp->getRegion(0).emplaceBlock();
  for (Type *Input : Ty->getInputs())
    Entry->addArgument(Input);
  getModuleBody(Module)->push_back(FuncOp);
  return FuncOp;
}

FunctionType *lz::func::getFuncType(Operation *FuncOp) {
  return cast<FunctionType>(
      FuncOp->getAttrOfType<TypeAttr>("function_type")->getValue());
}

std::string_view lz::func::getFuncName(Operation *FuncOp) {
  return FuncOp->getAttrOfType<StringAttr>("sym_name")->getValue();
}

Block *lz::func::getFuncEntryBlock(Operation *FuncOp) {
  return FuncOp->getRegion(0).getEntryBlock();
}

Operation *lz::func::buildCall(OpBuilder &B, std::string_view Callee,
                               std::span<Value *const> Args,
                               std::span<Type *const> ResultTypes,
                               bool MustTail) {
  OperationState State(B.getContext(), "func.call");
  State.addOperands(Args);
  State.addTypes(ResultTypes);
  State.addAttribute("callee", B.getContext().getSymbolRefAttr(Callee));
  if (MustTail)
    State.addAttribute("musttail", B.getContext().getUnitAttr());
  return B.create(State);
}

Operation *lz::func::buildReturn(OpBuilder &B, std::span<Value *const> Values) {
  OperationState State(B.getContext(), "func.return");
  State.addOperands(Values);
  return B.create(State);
}
