//===- Rgn.cpp - the rgn dialect: regions as SSA values ----------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "dialect/Rgn.h"

using namespace lz;
using namespace lz::rgn;

void lz::rgn::registerRgnDialect(Context &Ctx) {
  // rgn.val — region-as-value. Pure: DCE on it is the paper's Dead Region
  // Elimination; CSE on it (with structural region equivalence) is the
  // paper's Global Region Numbering.
  {
    OpDef Def;
    Def.Name = "rgn.val";
    Def.Traits = OpTrait_Pure;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumRegions() != 1 || Op->getNumResults() != 1 ||
          Op->getNumOperands() != 0)
        return failure();
      auto *Ty = dyn_cast<RegionValType>(Op->getResult(0)->getType());
      if (!Ty)
        return failure();
      Region &Body = Op->getRegion(0);
      if (Body.empty())
        return failure();
      Block *Entry = Body.getEntryBlock();
      if (Entry->getNumArguments() != Ty->getInputs().size())
        return failure();
      for (unsigned I = 0; I != Entry->getNumArguments(); ++I)
        if (Entry->getArgument(I)->getType() != Ty->getInputs()[I])
          return failure();
      // The escape rule: uses may only be select/switch/run.
      for (OpOperand *U = Op->getResult(0)->getFirstUse(); U;
           U = U->getNextUse()) {
        std::string_view UserName = U->getOwner()->getName();
        if (UserName != "arith.select" && UserName != "arith.switch" &&
            UserName != "rgn.run")
          return failure();
      }
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }

  // rgn.run — invoke a region value.
  {
    OpDef Def;
    Def.Name = "rgn.run";
    Def.Traits = OpTrait_IsTerminator;
    Def.Verify = [](Operation *Op) -> LogicalResult {
      if (Op->getNumOperands() < 1 || Op->getNumResults() != 0)
        return failure();
      auto *Ty = dyn_cast<RegionValType>(Op->getOperand(0)->getType());
      if (!Ty)
        return failure();
      if (Ty->getInputs().size() != Op->getNumOperands() - 1)
        return failure();
      for (unsigned I = 1; I != Op->getNumOperands(); ++I)
        if (Op->getOperand(I)->getType() != Ty->getInputs()[I - 1])
          return failure();
      return success();
    };
    Ctx.registerOp(std::move(Def));
  }
}

Operation *lz::rgn::buildVal(OpBuilder &B, std::span<Type *const> ParamTypes) {
  OperationState State(B.getContext(), "rgn.val");
  State.NumRegions = 1;
  State.ResultTypes.push_back(B.getContext().getRegionValType(
      std::vector<Type *>(ParamTypes.begin(), ParamTypes.end())));
  Operation *Op = B.create(State);
  Block *Entry = Op->getRegion(0).emplaceBlock();
  for (Type *Ty : ParamTypes)
    Entry->addArgument(Ty);
  return Op;
}

Operation *lz::rgn::buildRun(OpBuilder &B, Value *RegionVal,
                             std::span<Value *const> Args) {
  OperationState State(B.getContext(), "rgn.run");
  State.Operands.push_back(RegionVal);
  State.addOperands(Args);
  return B.create(State);
}

Region &lz::rgn::getValBody(Operation *ValOp) {
  assert(ValOp->getName() == "rgn.val" && "not a rgn.val");
  return ValOp->getRegion(0);
}

Operation *lz::rgn::resolveKnownRegion(Value *V) {
  Operation *Def = V->getDefiningOp();
  if (!Def)
    return nullptr;
  if (Def->getName() == "rgn.val")
    return Def;
  // select/switch with all choices identical resolve through; the select
  // folder normally handles this first, but resolving here makes the
  // lowering robust without a prior canonicalization run.
  if (Def->getName() == "arith.select" || Def->getName() == "arith.switch") {
    Value *First = Def->getOperand(1);
    for (unsigned I = 2; I != Def->getNumOperands(); ++I)
      if (Def->getOperand(I) != First)
        return nullptr;
    return resolveKnownRegion(First);
  }
  return nullptr;
}
