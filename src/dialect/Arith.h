//===- Arith.h - integer arithmetic dialect ---------------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `arith` dialect: constants, integer arithmetic, comparisons, and the
/// two value multiplexers the paper routes region values through
/// (Section IV: "We allow rgn.val values to be passed as operands to MLIR's
/// select and switch instructions").
///
/// Ops:
///   %c = arith.constant {value = 42 : i64} : iN
///   %r = arith.addi/subi/muli/divsi/remsi/andi/ori/xori %a, %b : iN
///   %b = arith.cmpi {predicate} %a, %b : i1
///   %r = arith.select %cond, %a, %b : T        (T may be !rgn.region)
///   %r = arith.switch %flag, %v0..%vN-1, %vdef {cases = [..]} : T
///
//===----------------------------------------------------------------------===//

#ifndef LZ_DIALECT_ARITH_H
#define LZ_DIALECT_ARITH_H

#include "ir/Builder.h"

#include <cstdint>
#include <span>
#include <string_view>

namespace lz::arith {

/// Comparison predicates for arith.cmpi, stored as an IntegerAttr.
enum class CmpPredicate : int64_t {
  EQ = 0,
  NE = 1,
  SLT = 2,
  SLE = 3,
  SGT = 4,
  SGE = 5,
};

/// Registers all arith ops with \p Ctx and installs the constant
/// materializer used by the fold driver.
void registerArithDialect(Context &Ctx);

/// Builds `arith.constant` of \p Ty holding \p Value.
Operation *buildConstant(OpBuilder &B, Type *Ty, int64_t Value);

/// Builds a binary arithmetic op ("arith.addi" etc.).
Operation *buildBinary(OpBuilder &B, std::string_view Name, Value *LHS,
                       Value *RHS);

/// Builds `arith.cmpi` producing i1.
Operation *buildCmp(OpBuilder &B, CmpPredicate Pred, Value *LHS, Value *RHS);

/// Builds `arith.select`.
Operation *buildSelect(OpBuilder &B, Value *Cond, Value *TrueVal,
                       Value *FalseVal);

/// Builds `arith.switch`: picks CaseValues[i] when Flag == Cases[i], else
/// DefaultValue. All picked values share one type.
Operation *buildSwitch(OpBuilder &B, Value *Flag,
                       std::span<int64_t const> Cases,
                       std::span<Value *const> CaseValues,
                       Value *DefaultValue);

/// If \p V is produced by a ConstantLike op, returns its "value" attribute,
/// else null. Shared helper for folders across dialects.
Attribute *getConstantValue(Value *V);

} // namespace lz::arith

#endif // LZ_DIALECT_ARITH_H
