//===- Object.h - LEAN-style runtime object model ---------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime object model substituting for LEAN4's libleanrt
/// (Section III-G): reference-counted heap cells behind a uniform boxed
/// representation.
///
///  * ObjRef with LSB tagging: odd values are unboxed machine scalars
///    ("LEAN guarantees that small integers are represented by a machine
///    word", Section III-A); even values point to heap Objects.
///  * Object kinds: constructor cells (tag + fields), big integers,
///    closures (PAPs), arrays (with RC==1 destructive update — what makes
///    the paper's `qsort` benchmark "real in-place"), and strings.
///  * Explicit inc/dec reference counting with allocation accounting so
///    tests can assert leak-freedom of the RC insertion pass.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_RUNTIME_OBJECT_H
#define LZ_RUNTIME_OBJECT_H

#include "support/BigInt.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace lz::rt {

/// A runtime value: either an unboxed scalar (LSB set) or an Object*.
using ObjRef = uint64_t;

/// Boxes a small integer into an unboxed scalar reference. The value must
/// fit in 63 bits (the frontend routes larger literals through bignums).
inline ObjRef boxScalar(int64_t Value) {
  return (static_cast<uint64_t>(Value) << 1) | 1;
}

inline bool isScalar(ObjRef Ref) { return (Ref & 1) != 0; }

inline int64_t unboxScalar(ObjRef Ref) {
  assert(isScalar(Ref) && "unboxing a heap reference");
  return static_cast<int64_t>(Ref) >> 1;
}

/// Smallest/largest integers representable as unboxed scalars.
constexpr int64_t MinSmallInt = -(1LL << 62);
constexpr int64_t MaxSmallInt = (1LL << 62) - 1;

enum class ObjKind : uint8_t { Ctor, BigNum, Closure, Array, String };

/// Per-allocation-site profile counters (heap & RC observability). Indexed
/// by SiteId; slot 0 is the `<runtime>` catch-all for unattributed
/// allocations (builtins, apply-internal cells, array copy-on-write).
struct SiteStats {
  uint64_t Allocs = 0;       ///< cells allocated at this site
  uint64_t CurrentLive = 0;  ///< cells from this site still live
  uint64_t PeakLive = 0;     ///< high-water mark of CurrentLive
  uint64_t Incs = 0;         ///< rc++ executed at this site
  uint64_t Decs = 0;         ///< rc-- executed at this site
  uint64_t ElidedAllocs = 0; ///< closure cells elided by PapApply fusion

  uint64_t rcTraffic() const { return Incs + Decs; }
};

/// Common heap object header.
struct Object {
  uint32_t RC;
  ObjKind Kind;
  uint8_t Tag;        ///< Constructor tag (Ctor only).
  uint16_t NumFields; ///< Constructor field count / closure arg count.
};

inline Object *asObject(ObjRef Ref) {
  assert(!isScalar(Ref) && Ref != 0 && "not a heap reference");
  return reinterpret_cast<Object *>(Ref);
}

inline ObjRef makeRef(Object *O) { return reinterpret_cast<uint64_t>(O); }

/// Constructor cell: header followed by NumFields ObjRefs.
struct CtorObject : Object {
  ObjRef *fields() { return reinterpret_cast<ObjRef *>(this + 1); }
  const ObjRef *fields() const {
    return reinterpret_cast<const ObjRef *>(this + 1);
  }
};

/// Arbitrary-precision integer cell (the GMP substitution).
struct BigNumObject : Object {
  BigInt Value;
};

/// Partial application: function index + arity + fixed arguments.
struct ClosureObject : Object {
  uint32_t FnIndex;
  uint16_t Arity;
  // NumFields = number of fixed args currently held.
  ObjRef *args() { return reinterpret_cast<ObjRef *>(this + 1); }
  const ObjRef *args() const {
    return reinterpret_cast<const ObjRef *>(this + 1);
  }
};

/// Dynamic array (LEAN's Array type).
struct ArrayObject : Object {
  std::vector<ObjRef> Elems;
};

/// Immutable string.
struct StringObject : Object {
  std::string Value;
};

/// Host hook used by `apply` to invoke a compiled function; implemented by
/// the VM (and by the reference interpreter in tests).
class ApplyHandler {
public:
  virtual ~ApplyHandler() = default;
  /// Calls function \p FnIndex with owned \p Args; returns an owned result.
  virtual ObjRef callFunction(uint32_t FnIndex, std::span<ObjRef> Args) = 0;
};

/// The runtime: allocation, reference counting and the LEAN builtin
/// operations. One Runtime instance per executing program; the allocation
/// counters let tests assert that compiled programs free every cell.
class Runtime {
public:
  Runtime() = default;
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  //===------------------------------------------------------------------===//
  // Accounting
  //===------------------------------------------------------------------===//

  uint64_t getLiveObjects() const { return LiveObjects; }
  uint64_t getTotalAllocations() const { return TotalAllocations; }

  /// When enabled, every live heap cell is remembered so reclaimLeaked()
  /// (run automatically by the destructor) can free cells that a trapped,
  /// fuel-exhausted, or miscompiled program left behind. Executors that
  /// deliberately observe leaks (the stage validator, intentional-leak
  /// tests) enable this so ASan's leak checker stays quiet; the normal VM
  /// path leaves it off and pays nothing.
  void setLeakTracking(bool Enable) { TrackLive = Enable; }

  /// Frees every still-live tracked cell without running reference
  /// counting (each cell is freed exactly once via the tracking set).
  /// Returns the number of cells reclaimed. Read getLiveObjects() first:
  /// reclaiming zeroes it.
  uint64_t reclaimLeaked();

  //===------------------------------------------------------------------===//
  // Per-site heap profiling
  //===------------------------------------------------------------------===//

  /// Enables per-site accounting with \p SiteNames indexed by SiteId
  /// (slot 0 should be the `<runtime>` catch-all; one is synthesized when
  /// the vector is empty). Allocation paths then attribute every cell to
  /// the current site, frees decrement the owning site's live count, and
  /// a sampled (allocations, live) heap timeline is recorded. Off by
  /// default; the only cost when off is one predictable branch per
  /// allocation/free — never per VM instruction.
  void enableSiteProfile(std::vector<std::string> SiteNames);
  bool isSiteProfiling() const { return SiteData != nullptr; }

  /// The site the next allocation is attributed to. The instrumented VM
  /// loop (and the validate evaluator) set this per executed instruction.
  void setAllocSite(int32_t Site) { CurrentSite = Site; }

  /// Raw stats array for the VM's hot loop (inc/dec/elision counters are
  /// bumped directly through this pointer). Null until enableSiteProfile.
  SiteStats *siteStatsData() { return SiteData; }
  size_t getNumSites() const { return SiteCounters.size(); }
  std::span<const SiteStats> getSiteStats() const { return SiteCounters; }
  const std::vector<std::string> &getSiteNames() const { return SiteNames; }

  /// Bumps a site's inc/dec counters with bounds clamping to the
  /// `<runtime>` slot (the evaluator's path; the VM writes directly).
  void noteSiteInc(int32_t Site, uint64_t N = 1) {
    if (SiteData)
      SiteData[clampSite(Site)].Incs += N;
  }
  void noteSiteDec(int32_t Site, uint64_t N = 1) {
    if (SiteData)
      SiteData[clampSite(Site)].Decs += N;
  }
  void noteSiteElidedAlloc(int32_t Site, uint64_t N = 1) {
    if (SiteData)
      SiteData[clampSite(Site)].ElidedAllocs += N;
  }

  /// Sampled heap timeline: (total allocations so far, live objects) at
  /// each sampled allocation/free event, for --trace-json counter events.
  struct HeapSample {
    uint64_t Allocations;
    uint64_t Live;
  };
  std::span<const HeapSample> getHeapTimeline() const { return Timeline; }

  /// Leak provenance: every site with surviving cells as (site name,
  /// surviving count), heaviest leaker first. Empty unless profiling is on
  /// and cells are still live — call before reclaimLeaked(), which frees
  /// the evidence.
  std::vector<std::pair<std::string, uint64_t>> collectLeakSites() const;

  //===------------------------------------------------------------------===//
  // Reference counting
  //===------------------------------------------------------------------===//

  void inc(ObjRef Ref) {
    if (isScalar(Ref))
      return;
    ++asObject(Ref)->RC;
  }

  void dec(ObjRef Ref) {
    if (isScalar(Ref))
      return;
    Object *O = asObject(Ref);
    assert(O->RC > 0 && "dec of a freed object");
    if (--O->RC == 0)
      destroy(O);
  }

  /// Batched inc/dec backing the VM's IncN/DecN superinstructions: one
  /// scalar test and one RC adjustment for a whole run of lp.inc/lp.dec on
  /// the same value.
  void incN(ObjRef Ref, uint32_t N) {
    if (isScalar(Ref))
      return;
    asObject(Ref)->RC += N;
  }

  void decN(ObjRef Ref, uint32_t N) {
    if (isScalar(Ref))
      return;
    Object *O = asObject(Ref);
    assert(O->RC >= N && "decN past zero");
    O->RC -= N;
    if (O->RC == 0)
      destroy(O);
  }

  /// True if the cell is uniquely referenced (enables in-place update).
  bool isExclusive(ObjRef Ref) const {
    return !isScalar(Ref) && asObject(Ref)->RC == 1;
  }

  //===------------------------------------------------------------------===//
  // Constructors
  //===------------------------------------------------------------------===//

  /// Allocates a constructor cell; takes ownership of \p Fields.
  ObjRef allocCtor(uint8_t Tag, std::span<const ObjRef> Fields);

  /// The constructor tag; scalars carry their value as the "tag" so that
  /// e.g. Bool/Nat-like enums (all-nullary inductives are erased to
  /// scalars) can be switched on uniformly.
  int64_t getTag(ObjRef Ref) const {
    if (isScalar(Ref))
      return unboxScalar(Ref);
    const Object *O = asObject(Ref);
    return O->Tag;
  }

  /// Borrowed field access.
  ObjRef getField(ObjRef Ref, unsigned Index) const {
    Object *O = asObject(Ref);
    assert(O->Kind == ObjKind::Ctor && Index < O->NumFields &&
           "bad projection");
    return static_cast<CtorObject *>(O)->fields()[Index];
  }

  //===------------------------------------------------------------------===//
  // Integers (Nat/Int share one signed representation, Section III-A)
  //===------------------------------------------------------------------===//

  ObjRef makeInt(int64_t Value) {
    if (Value >= MinSmallInt && Value <= MaxSmallInt)
      return boxScalar(Value);
    return allocBigNum(BigInt(Value));
  }
  ObjRef makeBigInt(const BigInt &Value);

  /// Reads any integer object into a BigInt (borrow).
  BigInt getIntValue(ObjRef Ref) const;

  // Arithmetic: owned args, owned result.
  ObjRef natAdd(ObjRef A, ObjRef B);
  ObjRef natSub(ObjRef A, ObjRef B); ///< truncated at 0 (LEAN Nat.sub)
  ObjRef natMul(ObjRef A, ObjRef B);
  ObjRef natDiv(ObjRef A, ObjRef B); ///< x/0 = 0 (LEAN convention)
  ObjRef natMod(ObjRef A, ObjRef B); ///< x%0 = x (LEAN convention)
  ObjRef intAdd(ObjRef A, ObjRef B);
  ObjRef intSub(ObjRef A, ObjRef B);
  ObjRef intMul(ObjRef A, ObjRef B);
  ObjRef intDiv(ObjRef A, ObjRef B); ///< truncated, x/0 = 0
  ObjRef intMod(ObjRef A, ObjRef B);
  ObjRef intNeg(ObjRef A);

  /// Comparisons return an i8-style 0/1 scalar, mirroring
  /// @lean_nat_dec_eq's i8 result (Section III-A).
  int64_t intCmp(ObjRef A, ObjRef B); ///< -1/0/1; consumes both
  ObjRef decEq(ObjRef A, ObjRef B) { return boxScalar(intCmp(A, B) == 0); }
  ObjRef decLt(ObjRef A, ObjRef B) { return boxScalar(intCmp(A, B) < 0); }
  ObjRef decLe(ObjRef A, ObjRef B) { return boxScalar(intCmp(A, B) <= 0); }

  //===------------------------------------------------------------------===//
  // Closures
  //===------------------------------------------------------------------===//

  /// Allocates a closure over function \p FnIndex of \p Arity with
  /// \p Fixed already-supplied (owned) arguments.
  ObjRef allocClosure(uint32_t FnIndex, uint16_t Arity,
                      std::span<const ObjRef> Fixed);

  /// LEAN's lean_apply_n: extends \p Closure (owned) with \p Args (owned);
  /// invokes through \p Handler on saturation; over-application re-applies
  /// the result. \p Closure must be a Closure object.
  ObjRef apply(ApplyHandler &Handler, ObjRef Closure,
               std::span<const ObjRef> Args);

  //===------------------------------------------------------------------===//
  // Arrays
  //===------------------------------------------------------------------===//

  ObjRef allocArray(size_t Size, ObjRef Fill);
  ObjRef arrayGet(ObjRef Arr, ObjRef Index);       ///< borrows Arr; owned result
  ObjRef arraySet(ObjRef Arr, ObjRef Index, ObjRef Val); ///< owned Arr/Val
  ObjRef arrayPush(ObjRef Arr, ObjRef Val);
  ObjRef arraySize(ObjRef Arr); ///< borrows

  //===------------------------------------------------------------------===//
  // Strings
  //===------------------------------------------------------------------===//

  ObjRef allocString(std::string Value);
  const std::string &getString(ObjRef Ref) const {
    const Object *O = asObject(Ref);
    assert(O->Kind == ObjKind::String && "not a string");
    return static_cast<const StringObject *>(O)->Value;
  }

  /// Renders any value for printing / test comparison: scalars and bignums
  /// as decimal, ctors as `#tag(fields...)`, arrays as `[e, ...]`.
  std::string toDisplayString(ObjRef Ref) const;

private:
  ObjRef allocBigNum(BigInt Value);
  void destroy(Object *O);

  /// Deallocates \p O without touching its children's reference counts
  /// (leak reclamation frees every tracked cell individually).
  void freeRaw(Object *O);

  void noteAlloc(Object *O) {
    ++LiveObjects;
    ++TotalAllocations;
    if (TrackLive)
      Tracked.insert(O);
    if (SiteData)
      noteSiteAlloc(O);
  }
  void noteFree(Object *O) {
    if (LiveObjects == 0)
      trapFreeWithoutAlloc(O); // proper trap even in Release builds
    --LiveObjects;
    if (TrackLive)
      Tracked.erase(O);
    if (SiteData)
      noteSiteFree(O);
  }

  int32_t clampSite(int32_t Site) const {
    return Site > 0 && static_cast<size_t>(Site) < SiteCounters.size() ? Site
                                                                       : 0;
  }
  void noteSiteAlloc(Object *O); ///< out-of-line: map insert + timeline
  void noteSiteFree(Object *O);
  [[noreturn]] void trapFreeWithoutAlloc(Object *O) const;
  void sampleTimeline();

  uint64_t LiveObjects = 0;
  uint64_t TotalAllocations = 0;
  bool TrackLive = false;
  std::unordered_set<Object *> Tracked;

  // Per-site profiling state (empty/null unless enableSiteProfile ran).
  std::vector<SiteStats> SiteCounters;
  SiteStats *SiteData = nullptr;
  std::vector<std::string> SiteNames;
  int32_t CurrentSite = 0;
  std::unordered_map<Object *, int32_t> AllocSite;
  std::vector<HeapSample> Timeline;
  uint64_t HeapEvents = 0;
};

} // namespace lz::rt

#endif // LZ_RUNTIME_OBJECT_H
