//===- Object.cpp - LEAN-style runtime object model ----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Object.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>

using namespace lz;
using namespace lz::rt;

//===----------------------------------------------------------------------===//
// Allocation / destruction
//===----------------------------------------------------------------------===//

ObjRef Runtime::allocCtor(uint8_t Tag, std::span<const ObjRef> Fields) {
  void *Mem =
      std::malloc(sizeof(CtorObject) + Fields.size() * sizeof(ObjRef));
  auto *O = new (Mem) CtorObject();
  O->RC = 1;
  O->Kind = ObjKind::Ctor;
  O->Tag = Tag;
  O->NumFields = static_cast<uint16_t>(Fields.size());
  for (size_t I = 0; I != Fields.size(); ++I)
    O->fields()[I] = Fields[I];
  noteAlloc(O);
  return makeRef(O);
}

ObjRef Runtime::allocBigNum(BigInt Value) {
  auto *O = new BigNumObject();
  O->RC = 1;
  O->Kind = ObjKind::BigNum;
  O->Tag = 0;
  O->NumFields = 0;
  O->Value = std::move(Value);
  noteAlloc(O);
  return makeRef(O);
}

ObjRef Runtime::makeBigInt(const BigInt &Value) {
  if (Value.fitsInt64()) {
    int64_t V = Value.getInt64();
    if (V >= MinSmallInt && V <= MaxSmallInt)
      return boxScalar(V);
  }
  return allocBigNum(Value);
}

ObjRef Runtime::allocClosure(uint32_t FnIndex, uint16_t Arity,
                             std::span<const ObjRef> Fixed) {
  assert(Fixed.size() <= Arity && "over-saturated closure allocation");
  void *Mem =
      std::malloc(sizeof(ClosureObject) + Arity * sizeof(ObjRef));
  auto *O = new (Mem) ClosureObject();
  O->RC = 1;
  O->Kind = ObjKind::Closure;
  O->Tag = 0;
  O->NumFields = static_cast<uint16_t>(Fixed.size());
  O->FnIndex = FnIndex;
  O->Arity = Arity;
  for (size_t I = 0; I != Fixed.size(); ++I)
    O->args()[I] = Fixed[I];
  noteAlloc(O);
  return makeRef(O);
}

ObjRef Runtime::allocArray(size_t Size, ObjRef Fill) {
  auto *O = new ArrayObject();
  O->RC = 1;
  O->Kind = ObjKind::Array;
  O->Tag = 0;
  O->NumFields = 0;
  O->Elems.assign(Size, Fill);
  // Fill is owned once; each extra slot needs its own reference.
  for (size_t I = 1; I < Size; ++I)
    inc(Fill);
  if (Size == 0)
    dec(Fill);
  noteAlloc(O);
  return makeRef(O);
}

ObjRef Runtime::allocString(std::string Value) {
  auto *O = new StringObject();
  O->RC = 1;
  O->Kind = ObjKind::String;
  O->Tag = 0;
  O->NumFields = 0;
  O->Value = std::move(Value);
  noteAlloc(O);
  return makeRef(O);
}

void Runtime::destroy(Object *O) {
  noteFree(O);
  switch (O->Kind) {
  case ObjKind::Ctor: {
    auto *C = static_cast<CtorObject *>(O);
    for (unsigned I = 0; I != C->NumFields; ++I)
      dec(C->fields()[I]);
    C->~CtorObject();
    std::free(C);
    break;
  }
  case ObjKind::BigNum:
    delete static_cast<BigNumObject *>(O);
    break;
  case ObjKind::Closure: {
    auto *C = static_cast<ClosureObject *>(O);
    for (unsigned I = 0; I != C->NumFields; ++I)
      dec(C->args()[I]);
    C->~ClosureObject();
    std::free(C);
    break;
  }
  case ObjKind::Array: {
    auto *A = static_cast<ArrayObject *>(O);
    for (ObjRef E : A->Elems)
      dec(E);
    delete A;
    break;
  }
  case ObjKind::String:
    delete static_cast<StringObject *>(O);
    break;
  }
}

void Runtime::freeRaw(Object *O) {
  switch (O->Kind) {
  case ObjKind::Ctor:
    static_cast<CtorObject *>(O)->~CtorObject();
    std::free(O);
    break;
  case ObjKind::BigNum:
    delete static_cast<BigNumObject *>(O);
    break;
  case ObjKind::Closure:
    static_cast<ClosureObject *>(O)->~ClosureObject();
    std::free(O);
    break;
  case ObjKind::Array:
    delete static_cast<ArrayObject *>(O);
    break;
  case ObjKind::String:
    delete static_cast<StringObject *>(O);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Per-site heap profiling
//===----------------------------------------------------------------------===//

void Runtime::enableSiteProfile(std::vector<std::string> Names) {
  if (Names.empty())
    Names.push_back("<runtime>");
  SiteNames = std::move(Names);
  SiteCounters.assign(SiteNames.size(), SiteStats());
  SiteData = SiteCounters.data();
  CurrentSite = 0;
  AllocSite.clear();
  Timeline.clear();
  HeapEvents = 0;
}

void Runtime::sampleTimeline() {
  // Dense at first so short programs get a full curve, then 1-in-64 so
  // long runs stay bounded. The x-axis is heap events, not wall time.
  ++HeapEvents;
  if (Timeline.size() < 4096 || (HeapEvents & 63) == 0)
    Timeline.push_back({TotalAllocations, LiveObjects});
}

void Runtime::noteSiteAlloc(Object *O) {
  int32_t Site = clampSite(CurrentSite);
  SiteStats &S = SiteData[Site];
  ++S.Allocs;
  if (++S.CurrentLive > S.PeakLive)
    S.PeakLive = S.CurrentLive;
  AllocSite[O] = Site;
  sampleTimeline();
}

void Runtime::noteSiteFree(Object *O) {
  auto It = AllocSite.find(O);
  int32_t Site = It == AllocSite.end() ? 0 : It->second;
  if (It != AllocSite.end())
    AllocSite.erase(It);
  SiteStats &S = SiteData[Site];
  if (S.CurrentLive > 0)
    --S.CurrentLive;
  sampleTimeline();
}

void Runtime::trapFreeWithoutAlloc(Object *O) const {
  // A real trap even in Release builds: freeing a cell the accounting
  // never saw means the RC discipline is broken, and continuing would
  // corrupt the heap. Blame the allocation site when profiling knows it.
  const char *SiteName = "<unknown>";
  std::string Named;
  if (SiteData) {
    auto It = AllocSite.find(const_cast<Object *>(O));
    if (It != AllocSite.end() &&
        static_cast<size_t>(It->second) < SiteNames.size()) {
      Named = SiteNames[It->second];
      SiteName = Named.c_str();
    }
  }
  std::fprintf(stderr, "runtime: free without matching alloc (site: %s)\n",
               SiteName);
  std::abort();
}

std::vector<std::pair<std::string, uint64_t>>
Runtime::collectLeakSites() const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (size_t I = 0; I != SiteCounters.size(); ++I)
    if (SiteCounters[I].CurrentLive != 0)
      Out.emplace_back(I < SiteNames.size() ? SiteNames[I] : "<runtime>",
                       SiteCounters[I].CurrentLive);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  return Out;
}

uint64_t Runtime::reclaimLeaked() {
  // Every live cell is in the set, so freeing each one exactly once (with
  // no child decs) releases arbitrary leaked object graphs, cycles or not.
  uint64_t Reclaimed = Tracked.size();
  for (Object *O : Tracked)
    freeRaw(O);
  Tracked.clear();
  assert(LiveObjects >= Reclaimed && "tracking out of sync with accounting");
  LiveObjects -= Reclaimed;
  return Reclaimed;
}

Runtime::~Runtime() { reclaimLeaked(); }

//===----------------------------------------------------------------------===//
// Integer arithmetic
//===----------------------------------------------------------------------===//

BigInt Runtime::getIntValue(ObjRef Ref) const {
  if (isScalar(Ref))
    return BigInt(unboxScalar(Ref));
  const Object *O = asObject(Ref);
  assert(O->Kind == ObjKind::BigNum && "not an integer object");
  return static_cast<const BigNumObject *>(O)->Value;
}

namespace {
/// True if both refs are unboxed scalars (the fast path the LEAN runtime
/// also takes).
bool bothScalar(ObjRef A, ObjRef B) { return isScalar(A) && isScalar(B); }
} // namespace

ObjRef Runtime::natAdd(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t R;
    if (!__builtin_add_overflow(unboxScalar(A), unboxScalar(B), &R))
      return makeInt(R);
  }
  BigInt Result = getIntValue(A) + getIntValue(B);
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::natSub(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t R = unboxScalar(A) - unboxScalar(B);
    return makeInt(R < 0 ? 0 : R);
  }
  BigInt Result = getIntValue(A) - getIntValue(B);
  dec(A);
  dec(B);
  if (Result.isNegative())
    return boxScalar(0);
  return makeBigInt(Result);
}

ObjRef Runtime::natMul(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t R;
    if (!__builtin_mul_overflow(unboxScalar(A), unboxScalar(B), &R))
      return makeInt(R);
  }
  BigInt Result = getIntValue(A) * getIntValue(B);
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::natDiv(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t BV = unboxScalar(B);
    return makeInt(BV == 0 ? 0 : unboxScalar(A) / BV);
  }
  BigInt BV = getIntValue(B);
  BigInt Result = BV.isZero() ? BigInt() : getIntValue(A) / BV;
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::natMod(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t BV = unboxScalar(B);
    return makeInt(BV == 0 ? unboxScalar(A) : unboxScalar(A) % BV);
  }
  BigInt AV = getIntValue(A);
  BigInt BV = getIntValue(B);
  BigInt Result = BV.isZero() ? AV : AV % BV;
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::intAdd(ObjRef A, ObjRef B) { return natAdd(A, B); }

ObjRef Runtime::intSub(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t R;
    if (!__builtin_sub_overflow(unboxScalar(A), unboxScalar(B), &R))
      return makeInt(R);
  }
  BigInt Result = getIntValue(A) - getIntValue(B);
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::intMul(ObjRef A, ObjRef B) { return natMul(A, B); }

ObjRef Runtime::intDiv(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t BV = unboxScalar(B);
    if (BV != 0 && !(unboxScalar(A) == INT64_MIN && BV == -1))
      return makeInt(BV == 0 ? 0 : unboxScalar(A) / BV);
    if (BV == 0)
      return boxScalar(0);
  }
  BigInt BV = getIntValue(B);
  BigInt Result = BV.isZero() ? BigInt() : getIntValue(A) / BV;
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::intMod(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t BV = unboxScalar(B);
    if (BV != 0 && !(unboxScalar(A) == INT64_MIN && BV == -1))
      return makeInt(unboxScalar(A) % BV);
    if (BV == 0)
      return A;
  }
  BigInt AV = getIntValue(A);
  BigInt BV = getIntValue(B);
  BigInt Result = BV.isZero() ? AV : AV % BV;
  dec(A);
  dec(B);
  return makeBigInt(Result);
}

ObjRef Runtime::intNeg(ObjRef A) {
  if (isScalar(A)) {
    int64_t V = unboxScalar(A);
    if (V != INT64_MIN)
      return makeInt(-V);
  }
  BigInt Result = -getIntValue(A);
  dec(A);
  return makeBigInt(Result);
}

int64_t Runtime::intCmp(ObjRef A, ObjRef B) {
  if (bothScalar(A, B)) {
    int64_t AV = unboxScalar(A), BV = unboxScalar(B);
    return AV < BV ? -1 : (AV > BV ? 1 : 0);
  }
  int Result = getIntValue(A).compare(getIntValue(B));
  dec(A);
  dec(B);
  return Result;
}

//===----------------------------------------------------------------------===//
// Closures
//===----------------------------------------------------------------------===//

ObjRef Runtime::apply(ApplyHandler &Handler, ObjRef Closure,
                      std::span<const ObjRef> Args) {
  // Real runtime trap, not an assert: applying a scalar or a non-closure
  // cell (a miscompiled over-application, say) must not be reinterpreted
  // as a ClosureObject in Release builds.
  if (isScalar(Closure) || Closure == 0 ||
      asObject(Closure)->Kind != ObjKind::Closure) {
    std::fprintf(stderr, "runtime: apply of a non-closure value\n");
    std::abort();
  }
  auto *C = static_cast<ClosureObject *>(asObject(Closure));
  unsigned Fixed = C->NumFields;
  unsigned Total = Fixed + static_cast<unsigned>(Args.size());

  if (Total < C->Arity) {
    // Still unsaturated: build an extended closure.
    std::vector<ObjRef> NewFixed(C->args(), C->args() + Fixed);
    for (ObjRef A : NewFixed)
      inc(A);
    NewFixed.insert(NewFixed.end(), Args.begin(), Args.end());
    ObjRef Result = allocClosure(C->FnIndex, C->Arity, NewFixed);
    dec(Closure);
    return Result;
  }

  unsigned Arity = C->Arity;
  unsigned Needed = Arity - Fixed;
  std::vector<ObjRef> CallArgs(C->args(), C->args() + Fixed);
  for (ObjRef A : CallArgs)
    inc(A);
  CallArgs.insert(CallArgs.end(), Args.begin(), Args.begin() + Needed);
  uint32_t FnIndex = C->FnIndex;
  dec(Closure);
  ObjRef Result = Handler.callFunction(FnIndex, CallArgs);

  if (Total == Arity)
    return Result;
  // Over-application: the result must itself be a closure.
  std::span<const ObjRef> Rest(Args.begin() + Needed, Args.end());
  return apply(Handler, Result, Rest);
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

namespace {
ArrayObject *asArray(ObjRef Ref) {
  Object *O = asObject(Ref);
  assert(O->Kind == ObjKind::Array && "not an array");
  return static_cast<ArrayObject *>(O);
}
} // namespace

ObjRef Runtime::arrayGet(ObjRef Arr, ObjRef Index) {
  ArrayObject *A = asArray(Arr);
  size_t I = static_cast<size_t>(unboxScalar(Index));
  assert(I < A->Elems.size() && "array index out of bounds");
  ObjRef E = A->Elems[I];
  inc(E);
  return E;
}

ObjRef Runtime::arraySet(ObjRef Arr, ObjRef Index, ObjRef Val) {
  ArrayObject *A = asArray(Arr);
  size_t I = static_cast<size_t>(unboxScalar(Index));
  assert(I < A->Elems.size() && "array index out of bounds");
  if (A->RC == 1) {
    // Destructive update on exclusive arrays: the LEAN trick that makes
    // functional qsort run in place.
    dec(A->Elems[I]);
    A->Elems[I] = Val;
    return Arr;
  }
  std::vector<ObjRef> Copy = A->Elems;
  for (ObjRef E : Copy)
    inc(E);
  dec(Copy[I]);
  Copy[I] = Val;
  auto *New = new ArrayObject();
  New->RC = 1;
  New->Kind = ObjKind::Array;
  New->Tag = 0;
  New->NumFields = 0;
  New->Elems = std::move(Copy);
  noteAlloc(New);
  dec(Arr);
  return makeRef(New);
}

ObjRef Runtime::arrayPush(ObjRef Arr, ObjRef Val) {
  ArrayObject *A = asArray(Arr);
  if (A->RC == 1) {
    A->Elems.push_back(Val);
    return Arr;
  }
  std::vector<ObjRef> Copy = A->Elems;
  for (ObjRef E : Copy)
    inc(E);
  Copy.push_back(Val);
  auto *New = new ArrayObject();
  New->RC = 1;
  New->Kind = ObjKind::Array;
  New->Tag = 0;
  New->NumFields = 0;
  New->Elems = std::move(Copy);
  noteAlloc(New);
  dec(Arr);
  return makeRef(New);
}

ObjRef Runtime::arraySize(ObjRef Arr) {
  return boxScalar(static_cast<int64_t>(asArray(Arr)->Elems.size()));
}

//===----------------------------------------------------------------------===//
// Display
//===----------------------------------------------------------------------===//

std::string Runtime::toDisplayString(ObjRef Ref) const {
  if (isScalar(Ref))
    return std::to_string(unboxScalar(Ref));
  const Object *O = asObject(Ref);
  switch (O->Kind) {
  case ObjKind::BigNum:
    return static_cast<const BigNumObject *>(O)->Value.toString();
  case ObjKind::Ctor: {
    const auto *C = static_cast<const CtorObject *>(O);
    std::string S = "#" + std::to_string(C->Tag) + "(";
    for (unsigned I = 0; I != C->NumFields; ++I) {
      if (I)
        S += ", ";
      S += toDisplayString(C->fields()[I]);
    }
    return S + ")";
  }
  case ObjKind::Closure:
    return "<closure/" +
           std::to_string(
               static_cast<const ClosureObject *>(O)->Arity) +
           ">";
  case ObjKind::Array: {
    const auto *A = static_cast<const ArrayObject *>(O);
    std::string S = "[";
    for (size_t I = 0; I != A->Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += toDisplayString(A->Elems[I]);
    }
    return S + "]";
  }
  case ObjKind::String:
    return static_cast<const StringObject *>(O)->Value;
  }
  return "<?>";
}
