//===- MiniLean.cpp - a small strict functional surface language --------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lambda/MiniLean.h"

#include <cassert>
#include <cctype>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace lz;
using namespace lz::lambda;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class Tok {
  Eof,
  Ident,
  Int,
  KwDef,
  KwInductive,
  KwLet,
  KwMatch,
  KwWith,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwFun,
  Underscore,
  LParen,
  RParen,
  Comma,
  Semi,
  Pipe,
  Arrow,   // =>
  Assign,  // :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Error,
};

struct Token {
  Tok K;
  std::string Text;
  int Line;
};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  Token next() {
    skip();
    if (Pos >= Src.size())
      return {Tok::Eof, "", Line};
    char C = Src[Pos];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
      return {Tok::Int, std::string(Src.substr(Start, Pos - Start)), Line};
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() && (std::isalnum(static_cast<unsigned char>(
                                      Src[Pos])) ||
                                  Src[Pos] == '_' || Src[Pos] == '.' ||
                                  Src[Pos] == '\''))
        ++Pos;
      std::string Text(Src.substr(Start, Pos - Start));
      if (Text == "def")
        return {Tok::KwDef, Text, Line};
      if (Text == "inductive")
        return {Tok::KwInductive, Text, Line};
      if (Text == "let")
        return {Tok::KwLet, Text, Line};
      if (Text == "match")
        return {Tok::KwMatch, Text, Line};
      if (Text == "with")
        return {Tok::KwWith, Text, Line};
      if (Text == "end")
        return {Tok::KwEnd, Text, Line};
      if (Text == "if")
        return {Tok::KwIf, Text, Line};
      if (Text == "fun")
        return {Tok::KwFun, Text, Line};
      if (Text == "then")
        return {Tok::KwThen, Text, Line};
      if (Text == "else")
        return {Tok::KwElse, Text, Line};
      if (Text == "_")
        return {Tok::Underscore, Text, Line};
      return {Tok::Ident, Text, Line};
    }
    auto Two = [&](char A, char B) {
      return C == A && Pos + 1 < Src.size() && Src[Pos + 1] == B;
    };
    if (Two(':', '=')) {
      Pos += 2;
      return {Tok::Assign, ":=", Line};
    }
    if (Two('=', '>')) {
      Pos += 2;
      return {Tok::Arrow, "=>", Line};
    }
    if (Two('=', '=')) {
      Pos += 2;
      return {Tok::EqEq, "==", Line};
    }
    if (Two('!', '=')) {
      Pos += 2;
      return {Tok::NotEq, "!=", Line};
    }
    if (Two('<', '=')) {
      Pos += 2;
      return {Tok::Le, "<=", Line};
    }
    if (Two('>', '=')) {
      Pos += 2;
      return {Tok::Ge, ">=", Line};
    }
    ++Pos;
    switch (C) {
    case '(':
      return {Tok::LParen, "(", Line};
    case ')':
      return {Tok::RParen, ")", Line};
    case ',':
      return {Tok::Comma, ",", Line};
    case ';':
      return {Tok::Semi, ";", Line};
    case '|':
      return {Tok::Pipe, "|", Line};
    case '+':
      return {Tok::Plus, "+", Line};
    case '-':
      return {Tok::Minus, "-", Line};
    case '*':
      return {Tok::Star, "*", Line};
    case '/':
      return {Tok::Slash, "/", Line};
    case '%':
      return {Tok::Percent, "%", Line};
    case '<':
      return {Tok::Lt, "<", Line};
    case '>':
      return {Tok::Gt, ">", Line};
    default:
      return {Tok::Error, std::string(1, C), Line};
    }
  }

private:
  void skip() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '-' && Pos + 1 < Src.size() && Src[Pos + 1] == '-') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Src;
  size_t Pos = 0;
  int Line = 1;
};

//===----------------------------------------------------------------------===//
// Surface AST
//===----------------------------------------------------------------------===//

struct SExpr;
using SExprPtr = std::unique_ptr<SExpr>;

struct SPattern {
  enum class Kind { Wildcard, Var, Ctor, IntLit };
  Kind K = Kind::Wildcard;
  std::string Name;               // Var name / Ctor name
  BigInt Lit;                     // IntLit
  std::vector<SPattern> Subs;     // Ctor subpatterns
  int Line = 0;
};

struct SMatchArm {
  std::vector<SPattern> Pats; // one per scrutinee
  SExprPtr Rhs;
};

struct SExpr {
  enum class Kind { Int, Var, App, Let, Match, If, Fun };
  Kind K;
  int Line = 0;
  BigInt Lit;                    // Int
  std::string Name;              // Var / Let binder
  SExprPtr Head;                 // App head (null when Name used) / Let value
  std::vector<SExprPtr> Args;    // App args / Match scrutinees / If (c,t,e)
  SExprPtr Body;                 // Let body / Fun body
  std::vector<SMatchArm> Arms;   // Match
  std::vector<std::string> Params; // Fun parameters
};

SExprPtr makeSExpr(SExpr::Kind K, int Line) {
  auto E = std::make_unique<SExpr>();
  E->K = K;
  E->Line = Line;
  return E;
}

struct SCtorInfo {
  std::string Inductive;
  int64_t Tag;
  unsigned Arity;
};

struct SDef {
  std::string Name;
  std::vector<std::string> Params;
  SExprPtr Body;
  int Line;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::string_view Src, std::string &Err) : Lex(Src), Err(Err) {
    advance();
  }

  bool parseProgram(std::vector<SDef> &Defs,
                    std::unordered_map<std::string, SCtorInfo> &Ctors,
                    std::unordered_map<std::string, unsigned> &InductiveSizes) {
    while (Cur.K != Tok::Eof) {
      if (Cur.K == Tok::KwInductive) {
        if (!parseInductive(Ctors, InductiveSizes))
          return false;
      } else if (Cur.K == Tok::KwDef) {
        if (!parseDef(Defs))
          return false;
      } else {
        return error("expected 'def' or 'inductive'");
      }
    }
    return true;
  }

private:
  void advance() { Cur = Lex.next(); }

  bool error(const std::string &Message) {
    if (Err.empty())
      Err = "line " + std::to_string(Cur.Line) + ": " + Message;
    return false;
  }

  bool expect(Tok K, const char *What) {
    if (Cur.K != K)
      return error(std::string("expected ") + What + ", got '" + Cur.Text +
                   "'");
    advance();
    return true;
  }

  bool parseInductive(std::unordered_map<std::string, SCtorInfo> &Ctors,
                      std::unordered_map<std::string, unsigned> &InductiveSizes) {
    advance(); // 'inductive'
    if (Cur.K != Tok::Ident)
      return error("expected inductive name");
    std::string TypeName = Cur.Text;
    advance();
    if (!expect(Tok::Assign, "':='"))
      return false;
    int64_t Tag = 0;
    while (Cur.K == Tok::Pipe) {
      advance();
      if (Cur.K != Tok::Ident)
        return error("expected constructor name");
      std::string CtorName = Cur.Text;
      advance();
      unsigned Arity = 0;
      while (Cur.K == Tok::Ident || Cur.K == Tok::Underscore) {
        ++Arity;
        advance();
      }
      if (Ctors.count(CtorName))
        return error("constructor '" + CtorName + "' redeclared");
      Ctors[CtorName] = {TypeName, Tag++, Arity};
    }
    if (Tag == 0)
      return error("inductive '" + TypeName + "' has no constructors");
    InductiveSizes[TypeName] = static_cast<unsigned>(Tag);
    return true;
  }

  bool parseDef(std::vector<SDef> &Defs) {
    int Line = Cur.Line;
    advance(); // 'def'
    if (Cur.K != Tok::Ident)
      return error("expected function name");
    SDef D;
    D.Name = Cur.Text;
    D.Line = Line;
    advance();
    while (Cur.K == Tok::Ident) {
      D.Params.push_back(Cur.Text);
      advance();
    }
    if (!expect(Tok::Assign, "':='"))
      return false;
    D.Body = parseExpr();
    if (!D.Body)
      return false;
    Defs.push_back(std::move(D));
    return true;
  }

  SExprPtr parseExpr() {
    if (Cur.K == Tok::KwLet) {
      int Line = Cur.Line;
      advance();
      if (Cur.K != Tok::Ident) {
        error("expected binder after 'let'");
        return nullptr;
      }
      auto E = makeSExpr(SExpr::Kind::Let, Line);
      E->Name = Cur.Text;
      advance();
      if (!expect(Tok::Assign, "':='"))
        return nullptr;
      E->Head = parseExpr();
      if (!E->Head)
        return nullptr;
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      E->Body = parseExpr();
      if (!E->Body)
        return nullptr;
      return E;
    }
    if (Cur.K == Tok::KwIf) {
      int Line = Cur.Line;
      advance();
      auto E = makeSExpr(SExpr::Kind::If, Line);
      SExprPtr C = parseExpr();
      if (!C)
        return nullptr;
      if (!expect(Tok::KwThen, "'then'"))
        return nullptr;
      SExprPtr T = parseExpr();
      if (!T)
        return nullptr;
      if (!expect(Tok::KwElse, "'else'"))
        return nullptr;
      SExprPtr F = parseExpr();
      if (!F)
        return nullptr;
      E->Args.push_back(std::move(C));
      E->Args.push_back(std::move(T));
      E->Args.push_back(std::move(F));
      return E;
    }
    if (Cur.K == Tok::KwMatch)
      return parseMatch();
    if (Cur.K == Tok::KwFun) {
      int Line = Cur.Line;
      advance();
      auto E = makeSExpr(SExpr::Kind::Fun, Line);
      while (Cur.K == Tok::Ident) {
        E->Params.push_back(Cur.Text);
        advance();
      }
      if (E->Params.empty()) {
        error("'fun' needs at least one parameter");
        return nullptr;
      }
      if (!expect(Tok::Arrow, "'=>'"))
        return nullptr;
      E->Body = parseExpr();
      if (!E->Body)
        return nullptr;
      return E;
    }
    return parseCompare();
  }

  SExprPtr parseMatch() {
    int Line = Cur.Line;
    advance(); // 'match'
    auto E = makeSExpr(SExpr::Kind::Match, Line);
    while (true) {
      SExprPtr S = parseCompare();
      if (!S)
        return nullptr;
      E->Args.push_back(std::move(S));
      if (Cur.K != Tok::Comma)
        break;
      advance();
    }
    if (!expect(Tok::KwWith, "'with'"))
      return nullptr;
    while (Cur.K == Tok::Pipe) {
      advance();
      SMatchArm Arm;
      while (true) {
        std::optional<SPattern> P = parsePattern(/*AllowArgs=*/true);
        if (!P)
          return nullptr;
        Arm.Pats.push_back(std::move(*P));
        if (Cur.K != Tok::Comma)
          break;
        advance();
      }
      if (Arm.Pats.size() != E->Args.size()) {
        error("pattern arity does not match scrutinee count");
        return nullptr;
      }
      if (!expect(Tok::Arrow, "'=>'"))
        return nullptr;
      Arm.Rhs = parseExpr();
      if (!Arm.Rhs)
        return nullptr;
      E->Arms.push_back(std::move(Arm));
    }
    if (E->Arms.empty()) {
      error("match with no arms");
      return nullptr;
    }
    if (!expect(Tok::KwEnd, "'end'"))
      return nullptr;
    return E;
  }

  /// Pattern atom or (with \p AllowArgs) a constructor application.
  std::optional<SPattern> parsePattern(bool AllowArgs) {
    SPattern P;
    P.Line = Cur.Line;
    switch (Cur.K) {
    case Tok::Underscore:
      P.K = SPattern::Kind::Wildcard;
      advance();
      return P;
    case Tok::Int:
      P.K = SPattern::Kind::IntLit;
      P.Lit = BigInt::fromString(Cur.Text);
      advance();
      return P;
    case Tok::LParen: {
      advance();
      std::optional<SPattern> Inner = parsePattern(/*AllowArgs=*/true);
      if (!Inner)
        return std::nullopt;
      if (!expect(Tok::RParen, "')'"))
        return std::nullopt;
      return Inner;
    }
    case Tok::Ident: {
      P.Name = Cur.Text;
      advance();
      // Whether this is a variable or constructor is resolved during
      // elaboration (the parser has no ctor table). Collect argument
      // atoms greedily when allowed; a bare lower-case name with no args
      // may still be a nullary constructor.
      P.K = SPattern::Kind::Ctor; // provisional; resolver may turn to Var
      if (AllowArgs) {
        while (Cur.K == Tok::Underscore || Cur.K == Tok::Int ||
               Cur.K == Tok::LParen || Cur.K == Tok::Ident) {
          std::optional<SPattern> Sub = parsePattern(/*AllowArgs=*/false);
          if (!Sub)
            return std::nullopt;
          P.Subs.push_back(std::move(*Sub));
        }
      }
      return P;
    }
    default:
      error("expected pattern");
      return std::nullopt;
    }
  }

  SExprPtr parseCompare() {
    SExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    Tok K = Cur.K;
    if (K != Tok::EqEq && K != Tok::NotEq && K != Tok::Lt && K != Tok::Le &&
        K != Tok::Gt && K != Tok::Ge)
      return L;
    int Line = Cur.Line;
    advance();
    SExprPtr R = parseAdd();
    if (!R)
      return nullptr;
    return makeCmp(K, std::move(L), std::move(R), Line);
  }

  SExprPtr makeBuiltinApp(const std::string &Name, SExprPtr A, SExprPtr B,
                          int Line) {
    auto E = makeSExpr(SExpr::Kind::App, Line);
    auto H = makeSExpr(SExpr::Kind::Var, Line);
    H->Name = Name;
    E->Head = std::move(H);
    E->Args.push_back(std::move(A));
    if (B)
      E->Args.push_back(std::move(B));
    return E;
  }

  SExprPtr makeCmp(Tok K, SExprPtr L, SExprPtr R, int Line) {
    switch (K) {
    case Tok::EqEq:
      return makeBuiltinApp("lean_nat_dec_eq", std::move(L), std::move(R),
                            Line);
    case Tok::Lt:
      return makeBuiltinApp("lean_nat_dec_lt", std::move(L), std::move(R),
                            Line);
    case Tok::Le:
      return makeBuiltinApp("lean_nat_dec_le", std::move(L), std::move(R),
                            Line);
    case Tok::Gt: // a > b  ==  b < a
      return makeBuiltinApp("lean_nat_dec_lt", std::move(R), std::move(L),
                            Line);
    case Tok::Ge: // a >= b  ==  b <= a
      return makeBuiltinApp("lean_nat_dec_le", std::move(R), std::move(L),
                            Line);
    case Tok::NotEq: {
      // a != b  ==  1 - (a == b)
      SExprPtr Eq = makeBuiltinApp("lean_nat_dec_eq", std::move(L),
                                   std::move(R), Line);
      auto One = makeSExpr(SExpr::Kind::Int, Line);
      One->Lit = BigInt(1);
      return makeBuiltinApp("lean_int_sub", std::move(One), std::move(Eq),
                            Line);
    }
    default:
      return nullptr;
    }
  }

  SExprPtr parseAdd() {
    SExprPtr L = parseMul();
    if (!L)
      return nullptr;
    while (Cur.K == Tok::Plus || Cur.K == Tok::Minus) {
      Tok K = Cur.K;
      int Line = Cur.Line;
      advance();
      SExprPtr R = parseMul();
      if (!R)
        return nullptr;
      L = makeBuiltinApp(K == Tok::Plus ? "lean_nat_add" : "lean_int_sub",
                         std::move(L), std::move(R), Line);
    }
    return L;
  }

  SExprPtr parseMul() {
    SExprPtr L = parseApp();
    if (!L)
      return nullptr;
    while (Cur.K == Tok::Star || Cur.K == Tok::Slash ||
           Cur.K == Tok::Percent) {
      Tok K = Cur.K;
      int Line = Cur.Line;
      advance();
      SExprPtr R = parseApp();
      if (!R)
        return nullptr;
      const char *Name = K == Tok::Star    ? "lean_nat_mul"
                         : K == Tok::Slash ? "lean_nat_div"
                                           : "lean_nat_mod";
      L = makeBuiltinApp(Name, std::move(L), std::move(R), Line);
    }
    return L;
  }

  SExprPtr parseApp() {
    SExprPtr Head = parseAtom();
    if (!Head)
      return nullptr;
    std::vector<SExprPtr> Args;
    while (Cur.K == Tok::Int || Cur.K == Tok::Ident ||
           Cur.K == Tok::LParen) {
      SExprPtr A = parseAtom();
      if (!A)
        return nullptr;
      Args.push_back(std::move(A));
    }
    if (Args.empty())
      return Head;
    auto E = makeSExpr(SExpr::Kind::App, Head->Line);
    E->Head = std::move(Head);
    E->Args = std::move(Args);
    return E;
  }

  SExprPtr parseAtom() {
    switch (Cur.K) {
    case Tok::Int: {
      auto E = makeSExpr(SExpr::Kind::Int, Cur.Line);
      E->Lit = BigInt::fromString(Cur.Text);
      advance();
      return E;
    }
    case Tok::Ident: {
      auto E = makeSExpr(SExpr::Kind::Var, Cur.Line);
      E->Name = Cur.Text;
      advance();
      return E;
    }
    case Tok::LParen: {
      advance();
      SExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      if (!expect(Tok::RParen, "')'"))
        return nullptr;
      return E;
    }
    default:
      error("expected expression, got '" + Cur.Text + "'");
      return nullptr;
    }
  }

  Lexer Lex;
  Token Cur;
  std::string &Err;
};

//===----------------------------------------------------------------------===//
// Elaborator: surface AST -> λpure ANF
//===----------------------------------------------------------------------===//

/// Surface-name to runtime-builtin aliases.
const std::pair<const char *, const char *> BuiltinAliases[] = {
    {"println", "lean_io_println"},   {"arrayMk", "lean_mk_array"},
    {"arrayGet", "lean_array_get"},   {"arraySet", "lean_array_set"},
    {"arrayPush", "lean_array_push"}, {"arraySize", "lean_array_size"},
    {"natSub", "lean_nat_sub"},       {"natDiv", "lean_nat_div"},
    {"natMod", "lean_nat_mod"},       {"intNeg", "lean_int_neg"},
    {"intDiv", "lean_int_div"},       {"intMod", "lean_int_mod"},
    {"intMul", "lean_int_mul"},       {"intAdd", "lean_int_add"},
};

/// Deep copy of a surface expression (for lambda lifting).
SExprPtr cloneSExpr(const SExpr &E) {
  auto C = makeSExpr(E.K, E.Line);
  C->Lit = E.Lit;
  C->Name = E.Name;
  C->Params = E.Params;
  if (E.Head)
    C->Head = cloneSExpr(*E.Head);
  if (E.Body)
    C->Body = cloneSExpr(*E.Body);
  for (const SExprPtr &A : E.Args)
    C->Args.push_back(cloneSExpr(*A));
  for (const SMatchArm &Arm : E.Arms) {
    SMatchArm NA;
    NA.Pats = Arm.Pats;
    NA.Rhs = cloneSExpr(*Arm.Rhs);
    C->Arms.push_back(std::move(NA));
  }
  return C;
}

class Elaborator {
public:
  Elaborator(const std::unordered_map<std::string, SCtorInfo> &Ctors,
             const std::unordered_map<std::string, unsigned> &InductiveSizes,
             std::unordered_map<std::string, unsigned> &FnArity,
             std::vector<SDef> &PendingDefs, std::string &Err)
      : Ctors(Ctors), InductiveSizes(InductiveSizes), FnArity(FnArity),
        PendingDefs(PendingDefs), Err(Err) {}

  bool elaborate(const SDef &D, Function &Out) {
    NextVar = 0;
    NextJoin = 0;
    Scopes.clear();
    Scopes.emplace_back();
    Out.Name = D.Name;
    for (const std::string &P : D.Params) {
      VarId V = NextVar++;
      Out.Params.push_back(V);
      Scopes.back()[P] = V;
    }
    FnBodyPtr Body =
        lower(*D.Body, [&](VarId V) { return makeRet(V); });
    // Errors can surface either as a null body or — when an inner
    // continuation failed — as a recorded message with a partial tree.
    if (!Body || !Err.empty())
      return false;
    Out.Body = std::move(Body);
    Out.NumVars = NextVar;
    Out.NumJoins = NextJoin;
    return true;
  }

private:
  using Cont = std::function<FnBodyPtr(VarId)>;

  bool error(int Line, const std::string &Message) {
    if (Err.empty())
      Err = "line " + std::to_string(Line) + ": " + Message;
    return false;
  }

  VarId fresh() { return NextVar++; }

  VarId *resolveLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  static Expr litExpr(const BigInt &Value) {
    Expr E;
    if (Value.fitsInt64() && Value.getInt64() >= rtMinSmall &&
        Value.getInt64() <= rtMaxSmall) {
      E.K = Expr::Kind::Lit;
      E.Tag = Value.getInt64();
    } else {
      E.K = Expr::Kind::BigLit;
      E.Big = Value;
    }
    return E;
  }

  // Mirrors runtime scalar bounds without including the runtime header.
  static constexpr int64_t rtMinSmall = -(1LL << 62);
  static constexpr int64_t rtMaxSmall = (1LL << 62) - 1;

  //===------------------------------------------------------------------===//
  // Expression lowering (continuation style)
  //===------------------------------------------------------------------===//

  FnBodyPtr lower(const SExpr &E, Cont K) {
    switch (E.K) {
    case SExpr::Kind::Int: {
      VarId V = fresh();
      return makeLet(V, litExpr(E.Lit), K(V));
    }
    case SExpr::Kind::Var:
      return lowerName(E, {}, std::move(K));
    case SExpr::Kind::Let: {
      const SExpr &Val = *E.Head;
      const SExpr &Body = *E.Body;
      return lower(Val, [&](VarId V) {
        Scopes.emplace_back();
        Scopes.back()[E.Name] = V;
        FnBodyPtr B = lower(Body, K);
        Scopes.pop_back();
        return B;
      });
    }
    case SExpr::Kind::App: {
      // Evaluate the head if it is not a plain name.
      if (E.Head->K == SExpr::Kind::Var)
        return lowerName(*E.Head, E.Args, std::move(K));
      return lower(*E.Head, [&](VarId H) {
        return lowerArgs(E.Args, 0, {}, [&, H](std::vector<VarId> ArgIds) {
          Expr AppE;
          AppE.K = Expr::Kind::VAp;
          AppE.Args.push_back(H);
          AppE.Args.insert(AppE.Args.end(), ArgIds.begin(), ArgIds.end());
          VarId V = fresh();
          return makeLet(V, std::move(AppE), K(V));
        });
      });
    }
    case SExpr::Kind::If: {
      const SExpr &CondE = *E.Args[0];
      const SExpr &ThenE = *E.Args[1];
      const SExpr &ElseE = *E.Args[2];
      return lower(CondE, [&](VarId C) {
        return withJoinSink(std::move(K), [&](const Cont &Sink) {
          // case c of 0 => else | default => then
          std::vector<Alt> Alts;
          Alt A0;
          A0.Tag = 0;
          A0.Body = lower(ElseE, Sink);
          if (!A0.Body)
            return FnBodyPtr();
          Alts.push_back(std::move(A0));
          FnBodyPtr Then = lower(ThenE, Sink);
          if (!Then)
            return FnBodyPtr();
          return makeCase(C, std::move(Alts), std::move(Then));
        });
      });
    }
    case SExpr::Kind::Match:
      return lowerMatch(E, std::move(K));
    case SExpr::Kind::Fun:
      return lowerFun(E, std::move(K));
    }
    return nullptr;
  }

  /// Lambda lifting (the process λrc's frontend performs before our IR
  /// sees the program, Section III-D / Figure 7): hoist the body to a
  /// fresh top-level function whose leading parameters are the captured
  /// locals, and materialize the lambda as a partial application over
  /// them — `fun x => e` becomes `lp.pap @_lambdaN(captured...)`.
  FnBodyPtr lowerFun(const SExpr &E, Cont K) {
    // Captured locals: free surface names of the body that resolve to
    // variables in the current scope, minus the lambda's own parameters.
    std::vector<std::string> Captured;
    std::unordered_set<std::string> Seen(E.Params.begin(), E.Params.end());
    collectCapturedNames(*E.Body, Seen, Captured);

    std::string LiftedName = "_lambda" + std::to_string(NextLambda++);
    SDef Lifted;
    Lifted.Name = LiftedName;
    Lifted.Line = E.Line;
    Lifted.Params = Captured;
    Lifted.Params.insert(Lifted.Params.end(), E.Params.begin(),
                         E.Params.end());
    Lifted.Body = cloneSExpr(*E.Body);
    FnArity[LiftedName] = static_cast<unsigned>(Lifted.Params.size());
    PendingDefs.push_back(std::move(Lifted));

    Expr Pap;
    Pap.K = Expr::Kind::PAp;
    Pap.Callee = LiftedName;
    for (const std::string &N : Captured) {
      VarId *V = resolveLocal(N);
      assert(V && "captured name does not resolve");
      Pap.Args.push_back(*V);
    }
    VarId V = fresh();
    return makeLet(V, std::move(Pap), K(V));
  }

  /// Collects free identifiers of \p E (in occurrence order) that resolve
  /// to locals of the *enclosing* function scope; \p Bound tracks names
  /// bound inside the lambda itself.
  void collectCapturedNames(const SExpr &E,
                            std::unordered_set<std::string> &Bound,
                            std::vector<std::string> &Out) {
    auto Consider = [&](const std::string &Name) {
      if (Bound.count(Name) || !resolveLocal(Name))
        return;
      for (const std::string &Existing : Out)
        if (Existing == Name)
          return;
      Out.push_back(Name);
    };
    switch (E.K) {
    case SExpr::Kind::Int:
      return;
    case SExpr::Kind::Var:
      Consider(E.Name);
      return;
    case SExpr::Kind::App:
      collectCapturedNames(*E.Head, Bound, Out);
      for (const SExprPtr &A : E.Args)
        collectCapturedNames(*A, Bound, Out);
      return;
    case SExpr::Kind::Let: {
      collectCapturedNames(*E.Head, Bound, Out);
      bool Inserted = Bound.insert(E.Name).second;
      collectCapturedNames(*E.Body, Bound, Out);
      if (Inserted)
        Bound.erase(E.Name);
      return;
    }
    case SExpr::Kind::If:
      for (const SExprPtr &A : E.Args)
        collectCapturedNames(*A, Bound, Out);
      return;
    case SExpr::Kind::Match: {
      for (const SExprPtr &S : E.Args)
        collectCapturedNames(*S, Bound, Out);
      for (const SMatchArm &Arm : E.Arms) {
        std::vector<std::string> ArmVars;
        for (SPattern P : Arm.Pats) { // copy: resolve without mutating
          resolvePattern(P);
          collectPatternVars(P, ArmVars);
        }
        std::vector<std::string> NewlyBound;
        for (const std::string &N : ArmVars)
          if (Bound.insert(N).second)
            NewlyBound.push_back(N);
        collectCapturedNames(*Arm.Rhs, Bound, Out);
        for (const std::string &N : NewlyBound)
          Bound.erase(N);
      }
      return;
    }
    case SExpr::Kind::Fun: {
      std::vector<std::string> NewlyBound;
      for (const std::string &N : E.Params)
        if (Bound.insert(N).second)
          NewlyBound.push_back(N);
      collectCapturedNames(*E.Body, Bound, Out);
      for (const std::string &N : NewlyBound)
        Bound.erase(N);
      return;
    }
    }
  }

  /// Wraps \p K in a join point when the construct has multiple exits, so
  /// each exit jumps instead of duplicating the continuation.
  FnBodyPtr withJoinSink(Cont K,
                         const std::function<FnBodyPtr(const Cont &)> &Gen) {
    JoinId J = NextJoin++;
    VarId Param = fresh();
    Cont Sink = [J](VarId V) { return makeJmp(J, {V}); };
    FnBodyPtr Body = Gen(Sink);
    if (!Body)
      return nullptr;
    return makeJDecl(J, {Param}, K(Param), std::move(Body));
  }

  /// Lowers a chain of argument expressions, then calls \p Done.
  FnBodyPtr lowerArgs(const std::vector<SExprPtr> &Args, size_t Index,
                      std::vector<VarId> Acc,
                      const std::function<FnBodyPtr(std::vector<VarId>)> &Done) {
    if (Index == Args.size())
      return Done(std::move(Acc));
    return lower(*Args[Index], [&](VarId V) {
      std::vector<VarId> NextAcc = Acc;
      NextAcc.push_back(V);
      return lowerArgs(Args, Index + 1, std::move(NextAcc), Done);
    });
  }

  /// Lowers an application (or bare reference) of a *named* head.
  FnBodyPtr lowerName(const SExpr &Head, const std::vector<SExprPtr> &Args,
                      Cont K) {
    const std::string &Name = Head.Name;
    int Line = Head.Line;

    // Local variable.
    if (VarId *Local = resolveLocal(Name)) {
      VarId H = *Local;
      if (Args.empty())
        return K(H);
      return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
        Expr E;
        E.K = Expr::Kind::VAp;
        E.Args.push_back(H);
        E.Args.insert(E.Args.end(), ArgIds.begin(), ArgIds.end());
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      });
    }

    // Constructor.
    auto CtorIt = Ctors.find(Name);
    if (CtorIt != Ctors.end()) {
      const SCtorInfo &Info = CtorIt->second;
      if (Args.size() != Info.Arity) {
        error(Line, "constructor '" + Name + "' expects " +
                        std::to_string(Info.Arity) + " arguments");
        return nullptr;
      }
      if (Info.Arity == 0) {
        // Nullary constructors are erased to scalar tags (as in LEAN).
        VarId V = fresh();
        return makeLet(V, litExpr(BigInt(Info.Tag)), K(V));
      }
      return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
        Expr E;
        E.K = Expr::Kind::Ctor;
        E.Tag = Info.Tag;
        E.Args = std::move(ArgIds);
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      });
    }

    // Runtime builtin (surface alias or direct lean_* name).
    std::string Builtin;
    for (auto [Alias, Target] : BuiltinAliases)
      if (Name == Alias)
        Builtin = Target;
    if (Builtin.empty() && isRuntimeBuiltin(Name))
      Builtin = Name;
    if (!Builtin.empty()) {
      unsigned Arity = runtimeBuiltinArity(Builtin);
      if (Args.size() != Arity) {
        error(Line, "builtin '" + Name + "' expects " +
                        std::to_string(Arity) + " arguments");
        return nullptr;
      }
      return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
        Expr E;
        E.K = Expr::Kind::FAp;
        E.Callee = Builtin;
        E.Args = std::move(ArgIds);
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      });
    }

    // User function.
    auto FnIt = FnArity.find(Name);
    if (FnIt == FnArity.end()) {
      error(Line, "unknown identifier '" + Name + "'");
      return nullptr;
    }
    unsigned Arity = FnIt->second;
    return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
      if (ArgIds.size() < Arity) {
        // Partial application builds a closure (lp.pap).
        Expr E;
        E.K = Expr::Kind::PAp;
        E.Callee = Name;
        E.Args = std::move(ArgIds);
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      }
      // Saturated call, possibly with surplus arguments applied to the
      // returned closure.
      std::vector<VarId> CallArgs(ArgIds.begin(), ArgIds.begin() + Arity);
      Expr E;
      E.K = Expr::Kind::FAp;
      E.Callee = Name;
      E.Args = std::move(CallArgs);
      VarId V = fresh();
      if (ArgIds.size() == Arity)
        return makeLet(V, std::move(E), K(V));
      Expr Over;
      Over.K = Expr::Kind::VAp;
      Over.Args.push_back(V);
      Over.Args.insert(Over.Args.end(), ArgIds.begin() + Arity,
                       ArgIds.end());
      VarId V2 = fresh();
      return makeLet(V, std::move(E),
                     makeLet(V2, std::move(Over), K(V2)));
    });
  }

  //===------------------------------------------------------------------===//
  // Match compilation (Maranget-style matrix, join point per arm)
  //===------------------------------------------------------------------===//

  struct Row {
    std::vector<SPattern> Pats;   // one per live occurrence
    size_t ArmIndex;
    std::unordered_map<std::string, VarId> Binds;
  };

  FnBodyPtr lowerMatch(const SExpr &E, Cont K) {
    return lowerArgs(E.Args, 0, {}, [&](std::vector<VarId> Occs) {
      return withJoinSink(std::move(K), [&](const Cont &Sink) {
        return compileArms(E, Occs, Sink);
      });
    });
  }

  /// Creates one join point per arm (the paper's Figure 5 deduplication),
  /// then compiles the pattern matrix whose leaves jump to them.
  FnBodyPtr compileArms(const SExpr &E, const std::vector<VarId> &Occs,
                        const Cont &Sink) {
    struct ArmInfo {
      JoinId Join;
      std::vector<std::string> VarNames; // parameter order
    };
    std::vector<ArmInfo> Arms;
    std::vector<FnBodyPtr> ArmBodies;
    std::vector<std::vector<VarId>> ArmParams;

    for (const SMatchArm &Arm : E.Arms) {
      ArmInfo Info;
      Info.Join = NextJoin++;
      // Resolve provisional constructor/variable patterns up front so the
      // right-hand side sees its pattern variables.
      for (SPattern &P : const_cast<SMatchArm &>(Arm).Pats)
        resolvePattern(P);
      for (const SPattern &P : Arm.Pats)
        collectPatternVars(P, Info.VarNames);
      // Elaborate the right-hand side with parameters in scope.
      Scopes.emplace_back();
      std::vector<VarId> Params;
      for (const std::string &N : Info.VarNames) {
        VarId V = fresh();
        Params.push_back(V);
        Scopes.back()[N] = V;
      }
      FnBodyPtr Rhs = lower(*Arm.Rhs, Sink);
      Scopes.pop_back();
      if (!Rhs)
        return nullptr;
      ArmBodies.push_back(std::move(Rhs));
      ArmParams.push_back(std::move(Params));
      Arms.push_back(std::move(Info));
    }

    // Matrix rows.
    std::vector<Row> Rows;
    for (size_t I = 0; I != E.Arms.size(); ++I) {
      Row R;
      R.Pats = clonePatterns(E.Arms[I].Pats);
      R.ArmIndex = I;
      Rows.push_back(std::move(R));
    }

    std::vector<ArmInfo> &ArmsRef = Arms;
    FnBodyPtr Tree = compileMatrix(Occs, std::move(Rows),
                                   [&](size_t ArmIndex,
                                       const std::unordered_map<std::string, VarId> &B)
                                       -> FnBodyPtr {
      std::vector<VarId> Args;
      for (const std::string &N : ArmsRef[ArmIndex].VarNames) {
        auto It = B.find(N);
        assert(It != B.end() && "pattern variable not bound at leaf");
        Args.push_back(It->second);
      }
      return makeJmp(ArmsRef[ArmIndex].Join, std::move(Args));
    });
    if (!Tree)
      return nullptr;

    // jdecl a_n ... jdecl a_0 ... tree (declared outermost-first so later
    // arms can be jumped to from anywhere in the tree).
    FnBodyPtr Result = std::move(Tree);
    for (size_t I = Arms.size(); I-- > 0;) {
      Result = makeJDecl(Arms[I].Join, std::move(ArmParams[I]),
                         std::move(ArmBodies[I]), std::move(Result));
    }
    return Result;
  }

  static void collectPatternVars(const SPattern &P,
                                 std::vector<std::string> &Out) {
    if (P.K == SPattern::Kind::Var) {
      Out.push_back(P.Name);
      return;
    }
    if (P.K == SPattern::Kind::Ctor)
      for (const SPattern &S : P.Subs)
        collectPatternVars(S, Out);
  }

  static std::vector<SPattern> clonePatterns(const std::vector<SPattern> &Ps) {
    return Ps; // SPattern is value-copyable
  }

  /// Resolves provisional Ctor patterns: names that are not declared
  /// constructors become variables.
  void resolvePattern(SPattern &P) {
    if (P.K != SPattern::Kind::Ctor)
      return;
    if (!Ctors.count(P.Name)) {
      assert(P.Subs.empty() && "application of non-constructor in pattern");
      P.K = SPattern::Kind::Var;
      return;
    }
    for (SPattern &S : P.Subs)
      resolvePattern(S);
  }

  static bool isWildcardLike(const SPattern &P) {
    return P.K == SPattern::Kind::Wildcard || P.K == SPattern::Kind::Var;
  }

  using LeafFn =
      std::function<FnBodyPtr(size_t,
                              const std::unordered_map<std::string, VarId> &)>;

  FnBodyPtr compileMatrix(std::vector<VarId> Occs, std::vector<Row> Rows,
                          const LeafFn &Leaf) {
    if (Rows.empty())
      return makeUnreachable();

    for (Row &R : Rows)
      for (SPattern &P : R.Pats)
        resolvePattern(P);

    // First row irrefutable -> bind its variables and jump to its arm.
    Row &First = Rows.front();
    bool AllWild = true;
    for (const SPattern &P : First.Pats)
      AllWild &= isWildcardLike(P);
    if (AllWild) {
      for (size_t C = 0; C != First.Pats.size(); ++C)
        if (First.Pats[C].K == SPattern::Kind::Var)
          First.Binds[First.Pats[C].Name] = Occs[C];
      return Leaf(First.ArmIndex, First.Binds);
    }

    // Pick the leftmost column with a refutable pattern.
    size_t Col = 0;
    for (; Col != First.Pats.size(); ++Col)
      if (!isWildcardLike(First.Pats[Col]))
        break;
    // (some row has a refutable pattern in Col — at least the first)

    bool HasCtor = false, HasInt = false;
    for (const Row &R : Rows) {
      if (R.Pats[Col].K == SPattern::Kind::Ctor)
        HasCtor = true;
      if (R.Pats[Col].K == SPattern::Kind::IntLit)
        HasInt = true;
    }
    if (HasCtor && HasInt) {
      Err = "mixed integer and constructor patterns in one column";
      return nullptr;
    }
    if (HasInt)
      return compileIntColumn(std::move(Occs), std::move(Rows), Col, Leaf);
    return compileCtorColumn(std::move(Occs), std::move(Rows), Col, Leaf);
  }

  FnBodyPtr compileCtorColumn(std::vector<VarId> Occs, std::vector<Row> Rows,
                              size_t Col, const LeafFn &Leaf) {
    // Group rows by head constructor (declaration-tag order for output).
    std::map<int64_t, const SCtorInfo *> Heads;
    std::string Inductive;
    for (const Row &R : Rows) {
      if (R.Pats[Col].K != SPattern::Kind::Ctor)
        continue;
      const SCtorInfo &Info = Ctors.at(R.Pats[Col].Name);
      Heads.emplace(Info.Tag, &Info);
      Inductive = Info.Inductive;
    }

    VarId Scrut = Occs[Col];
    std::vector<Alt> Alts;
    for (auto &[Tag, Info] : Heads) {
      // Fresh variables for the constructor fields.
      std::vector<VarId> Fields;
      for (unsigned I = 0; I != Info->Arity; ++I)
        Fields.push_back(fresh());

      // Specialized occurrence vector.
      std::vector<VarId> SubOccs;
      for (size_t C = 0; C != Occs.size(); ++C) {
        if (C == Col)
          SubOccs.insert(SubOccs.end(), Fields.begin(), Fields.end());
        else
          SubOccs.push_back(Occs[C]);
      }

      // Specialized rows.
      std::vector<Row> SubRows;
      for (const Row &R : Rows) {
        const SPattern &P = R.Pats[Col];
        Row NR;
        NR.ArmIndex = R.ArmIndex;
        NR.Binds = R.Binds;
        if (P.K == SPattern::Kind::Ctor) {
          if (Ctors.at(P.Name).Tag != Tag)
            continue;
          for (size_t C = 0; C != R.Pats.size(); ++C) {
            if (C == Col)
              NR.Pats.insert(NR.Pats.end(), P.Subs.begin(), P.Subs.end());
            else
              NR.Pats.push_back(R.Pats[C]);
          }
        } else { // wildcard-like row participates in every group
          if (P.K == SPattern::Kind::Var)
            NR.Binds[P.Name] = Scrut;
          for (size_t C = 0; C != R.Pats.size(); ++C) {
            if (C == Col) {
              for (unsigned I = 0; I != Info->Arity; ++I)
                NR.Pats.push_back(SPattern());
            } else {
              NR.Pats.push_back(R.Pats[C]);
            }
          }
        }
        SubRows.push_back(std::move(NR));
      }

      FnBodyPtr SubTree = compileMatrix(SubOccs, std::move(SubRows), Leaf);
      if (!SubTree)
        return nullptr;
      // Prefix with the field projections.
      for (size_t I = Fields.size(); I-- > 0;) {
        Expr Proj;
        Proj.K = Expr::Kind::Proj;
        Proj.Tag = static_cast<int64_t>(I);
        Proj.Args.push_back(Scrut);
        SubTree = makeLet(Fields[I], std::move(Proj), std::move(SubTree));
      }
      Alt A;
      A.Tag = Tag;
      A.Body = std::move(SubTree);
      Alts.push_back(std::move(A));
    }

    // Default: rows with wildcard-like patterns in this column.
    FnBodyPtr Default;
    bool Exhaustive =
        !Inductive.empty() && Heads.size() == InductiveSizes.at(Inductive);
    std::vector<Row> DefaultRows;
    for (const Row &R : Rows) {
      const SPattern &P = R.Pats[Col];
      if (!isWildcardLike(P))
        continue;
      Row NR;
      NR.ArmIndex = R.ArmIndex;
      NR.Binds = R.Binds;
      if (P.K == SPattern::Kind::Var)
        NR.Binds[P.Name] = Scrut;
      for (size_t C = 0; C != R.Pats.size(); ++C)
        if (C != Col)
          NR.Pats.push_back(R.Pats[C]);
      DefaultRows.push_back(std::move(NR));
    }
    if (!Exhaustive || !DefaultRows.empty()) {
      std::vector<VarId> DefOccs;
      for (size_t C = 0; C != Occs.size(); ++C)
        if (C != Col)
          DefOccs.push_back(Occs[C]);
      Default = compileMatrix(std::move(DefOccs), std::move(DefaultRows),
                              Leaf);
      if (!Default)
        return nullptr;
    }
    if (!Default) {
      // Exhaustive over the inductive: the last alternative becomes the
      // default arm (lp.switch always carries an @default region).
      Default = std::move(Alts.back().Body);
      Alts.pop_back();
    }
    return makeCase(Scrut, std::move(Alts), std::move(Default));
  }

  FnBodyPtr compileIntColumn(std::vector<VarId> Occs, std::vector<Row> Rows,
                             size_t Col, const LeafFn &Leaf) {
    // Staged integer matching (paper Figure 4): test literals one by one
    // with @lean_nat_dec_eq, falling through to the remaining matrix.
    const SPattern &P = Rows.front().Pats[Col];
    if (isWildcardLike(P)) {
      // First row is irrefutable in this column but refutable elsewhere;
      // fall back to the generic splitter on another column by rotating:
      // compileMatrix picks the first refutable column of row 0, which is
      // not Col — so simply re-enter.
      return compileMatrix(std::move(Occs), std::move(Rows), Leaf);
    }
    BigInt Lit = P.Lit;

    // Specialized matrix: rows whose Col is Lit or wildcard-like.
    std::vector<Row> EqRows;
    std::vector<Row> RestRows;
    VarId Scrut = Occs[Col];
    for (const Row &R : Rows) {
      const SPattern &RP = R.Pats[Col];
      if (RP.K == SPattern::Kind::IntLit && RP.Lit == Lit) {
        Row NR;
        NR.ArmIndex = R.ArmIndex;
        NR.Binds = R.Binds;
        for (size_t C = 0; C != R.Pats.size(); ++C)
          if (C != Col)
            NR.Pats.push_back(R.Pats[C]);
        EqRows.push_back(std::move(NR));
      } else if (isWildcardLike(RP)) {
        Row NR;
        NR.ArmIndex = R.ArmIndex;
        NR.Binds = R.Binds;
        if (RP.K == SPattern::Kind::Var)
          NR.Binds[RP.Name] = Scrut;
        for (size_t C = 0; C != R.Pats.size(); ++C)
          if (C != Col)
            NR.Pats.push_back(R.Pats[C]);
        EqRows.push_back(std::move(NR));
        RestRows.push_back(R);
      } else {
        RestRows.push_back(R);
      }
    }

    std::vector<VarId> EqOccs;
    for (size_t C = 0; C != Occs.size(); ++C)
      if (C != Col)
        EqOccs.push_back(Occs[C]);

    FnBodyPtr EqTree = compileMatrix(std::move(EqOccs), std::move(EqRows),
                                     Leaf);
    if (!EqTree)
      return nullptr;
    FnBodyPtr RestTree = compileMatrix(Occs, std::move(RestRows), Leaf);
    if (!RestTree)
      return nullptr;

    VarId LitVar = fresh();
    VarId TestVar = fresh();
    Expr TestE;
    TestE.K = Expr::Kind::FAp;
    TestE.Callee = "lean_nat_dec_eq";
    TestE.Args = {Scrut, LitVar};

    std::vector<Alt> Alts;
    Alt A0;
    A0.Tag = 0; // not equal
    A0.Body = std::move(RestTree);
    Alts.push_back(std::move(A0));
    FnBodyPtr CaseB =
        makeCase(TestVar, std::move(Alts), std::move(EqTree));
    return makeLet(LitVar, litExpr(Lit),
                   makeLet(TestVar, std::move(TestE), std::move(CaseB)));
  }

  const std::unordered_map<std::string, SCtorInfo> &Ctors;
  const std::unordered_map<std::string, unsigned> &InductiveSizes;
  std::unordered_map<std::string, unsigned> &FnArity;
  std::vector<SDef> &PendingDefs;
  std::string &Err;

  uint32_t NextVar = 0;
  uint32_t NextJoin = 0;
  uint32_t NextLambda = 0;
  std::vector<std::unordered_map<std::string, VarId>> Scopes;
};

} // namespace

LogicalResult lambda::parseMiniLean(std::string_view Source, Program &Out,
                                    std::string &ErrorMessage) {
  ErrorMessage.clear();
  std::vector<SDef> Defs;
  std::unordered_map<std::string, SCtorInfo> Ctors;
  std::unordered_map<std::string, unsigned> InductiveSizes;
  Parser P(Source, ErrorMessage);
  if (!P.parseProgram(Defs, Ctors, InductiveSizes))
    return failure();

  std::unordered_map<std::string, unsigned> FnArity;
  for (const SDef &D : Defs) {
    if (FnArity.count(D.Name)) {
      ErrorMessage = "function '" + D.Name + "' defined twice";
      return failure();
    }
    FnArity[D.Name] = static_cast<unsigned>(D.Params.size());
  }

  // Lambda lifting appends fresh definitions while elaborating, so the
  // worklist grows; lifted functions are elaborated like any other.
  std::vector<SDef> Pending;
  Elaborator E(Ctors, InductiveSizes, FnArity, Pending, ErrorMessage);
  std::vector<SDef> Work = std::move(Defs);
  for (size_t I = 0; I != Work.size(); ++I) {
    Function F;
    if (!E.elaborate(Work[I], F))
      return failure();
    Out.add(std::move(F));
    for (SDef &L : Pending)
      Work.push_back(std::move(L));
    Pending.clear();
  }
  return success();
}
