//===- MiniLean.cpp - a small strict functional surface language --------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Error handling: the parser is error-resilient in the minic style. Every
/// diagnostic goes through the shared DiagnosticEngine with the offending
/// token's line AND column; after an error the parser synchronizes — at
/// expression sync tokens (';' of a let, '|'/'end' of a match, 'else' of a
/// conditional) inside a definition, and at the next 'def'/'inductive'
/// keyword at top level — substituting a placeholder expression so
/// elaboration of the rest of the program still runs and reports its own
/// errors. A recursion-depth budget (ParseOptions::MaxNestingDepth) bounds
/// both parser recursion and the depth of the AST it builds (operator
/// chains count too: they build left-nested trees that the elaborator and
/// destructors recurse over), so arbitrarily nested input diagnoses
/// "nesting too deep" instead of overflowing the stack.
///
//===----------------------------------------------------------------------===//

#include "lambda/MiniLean.h"

#include <cassert>
#include <cctype>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace lz;
using namespace lz::lambda;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class Tok {
  Eof,
  Ident,
  Int,
  KwDef,
  KwInductive,
  KwLet,
  KwMatch,
  KwWith,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwFun,
  Underscore,
  LParen,
  RParen,
  Comma,
  Semi,
  Pipe,
  Arrow,   // =>
  Assign,  // :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Error,
};

struct Token {
  Tok K;
  std::string Text;
  int Line;
  int Col = 1; // 1-based column of the token's first character

  SourceLoc loc() const { return SourceLoc(Line, Col); }
};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  Token next() {
    skip();
    int StartCol = static_cast<int>(Pos - LineStart) + 1;
    Token T = lexToken();
    T.Col = StartCol;
    return T;
  }

private:
  Token lexToken() {
    if (Pos >= Src.size())
      return {Tok::Eof, "", Line};
    char C = Src[Pos];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
      return {Tok::Int, std::string(Src.substr(Start, Pos - Start)), Line};
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() && (std::isalnum(static_cast<unsigned char>(
                                      Src[Pos])) ||
                                  Src[Pos] == '_' || Src[Pos] == '.' ||
                                  Src[Pos] == '\''))
        ++Pos;
      std::string Text(Src.substr(Start, Pos - Start));
      if (Text == "def")
        return {Tok::KwDef, Text, Line};
      if (Text == "inductive")
        return {Tok::KwInductive, Text, Line};
      if (Text == "let")
        return {Tok::KwLet, Text, Line};
      if (Text == "match")
        return {Tok::KwMatch, Text, Line};
      if (Text == "with")
        return {Tok::KwWith, Text, Line};
      if (Text == "end")
        return {Tok::KwEnd, Text, Line};
      if (Text == "if")
        return {Tok::KwIf, Text, Line};
      if (Text == "fun")
        return {Tok::KwFun, Text, Line};
      if (Text == "then")
        return {Tok::KwThen, Text, Line};
      if (Text == "else")
        return {Tok::KwElse, Text, Line};
      if (Text == "_")
        return {Tok::Underscore, Text, Line};
      return {Tok::Ident, Text, Line};
    }
    auto Two = [&](char A, char B) {
      return C == A && Pos + 1 < Src.size() && Src[Pos + 1] == B;
    };
    if (Two(':', '=')) {
      Pos += 2;
      return {Tok::Assign, ":=", Line};
    }
    if (Two('=', '>')) {
      Pos += 2;
      return {Tok::Arrow, "=>", Line};
    }
    if (Two('=', '=')) {
      Pos += 2;
      return {Tok::EqEq, "==", Line};
    }
    if (Two('!', '=')) {
      Pos += 2;
      return {Tok::NotEq, "!=", Line};
    }
    if (Two('<', '=')) {
      Pos += 2;
      return {Tok::Le, "<=", Line};
    }
    if (Two('>', '=')) {
      Pos += 2;
      return {Tok::Ge, ">=", Line};
    }
    ++Pos;
    switch (C) {
    case '(':
      return {Tok::LParen, "(", Line};
    case ')':
      return {Tok::RParen, ")", Line};
    case ',':
      return {Tok::Comma, ",", Line};
    case ';':
      return {Tok::Semi, ";", Line};
    case '|':
      return {Tok::Pipe, "|", Line};
    case '+':
      return {Tok::Plus, "+", Line};
    case '-':
      return {Tok::Minus, "-", Line};
    case '*':
      return {Tok::Star, "*", Line};
    case '/':
      return {Tok::Slash, "/", Line};
    case '%':
      return {Tok::Percent, "%", Line};
    case '<':
      return {Tok::Lt, "<", Line};
    case '>':
      return {Tok::Gt, ">", Line};
    default:
      return {Tok::Error, std::string(1, C), Line};
    }
  }

  void skip() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '-' && Pos + 1 < Src.size() && Src[Pos + 1] == '-') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Src;
  size_t Pos = 0;
  size_t LineStart = 0;
  int Line = 1;
};

//===----------------------------------------------------------------------===//
// Surface AST
//===----------------------------------------------------------------------===//

struct SExpr;
using SExprPtr = std::unique_ptr<SExpr>;

struct SPattern {
  enum class Kind { Wildcard, Var, Ctor, IntLit };
  Kind K = Kind::Wildcard;
  std::string Name;               // Var name / Ctor name
  BigInt Lit;                     // IntLit
  std::vector<SPattern> Subs;     // Ctor subpatterns
  SourceLoc Loc;
};

struct SMatchArm {
  std::vector<SPattern> Pats; // one per scrutinee
  SExprPtr Rhs;
  SourceLoc Loc; // the arm's leading '|'
};

struct SExpr {
  enum class Kind { Int, Var, App, Let, Match, If, Fun };
  Kind K;
  SourceLoc Loc;
  BigInt Lit;                    // Int
  std::string Name;              // Var / Let binder
  SExprPtr Head;                 // App head (null when Name used) / Let value
  std::vector<SExprPtr> Args;    // App args / Match scrutinees / If (c,t,e)
  SExprPtr Body;                 // Let body / Fun body
  std::vector<SMatchArm> Arms;   // Match
  std::vector<std::string> Params; // Fun parameters
};

SExprPtr makeSExpr(SExpr::Kind K, SourceLoc Loc) {
  auto E = std::make_unique<SExpr>();
  E->K = K;
  E->Loc = Loc;
  return E;
}

/// Placeholder substituted for an unparseable subexpression after
/// recovery; elaboration-safe everywhere an expression is expected.
SExprPtr makePlaceholder(SourceLoc Loc) {
  auto E = makeSExpr(SExpr::Kind::Int, Loc);
  E->Lit = BigInt(0);
  return E;
}

struct SCtorInfo {
  std::string Inductive;
  int64_t Tag;
  unsigned Arity;
};

struct SDef {
  std::string Name;
  std::vector<std::string> Params;
  SExprPtr Body;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::string_view Src, DiagnosticEngine &DE, unsigned MaxDepth)
      : Lex(Src), DE(DE), MaxDepth(MaxDepth) {
    advance();
  }

  /// Parses the whole program, recovering at def/inductive boundaries so
  /// one bad definition does not hide diagnostics in the rest. Returns
  /// false iff any error was reported.
  bool parseProgram(std::vector<SDef> &Defs,
                    std::unordered_map<std::string, SCtorInfo> &Ctors,
                    std::unordered_map<std::string, unsigned> &InductiveSizes) {
    while (Cur.K != Tok::Eof && !DE.errorLimitReached()) {
      if (Cur.K == Tok::KwInductive) {
        if (!parseInductive(Ctors, InductiveSizes))
          syncTopLevel();
      } else if (Cur.K == Tok::KwDef) {
        if (!parseDef(Defs))
          syncTopLevel();
      } else {
        error("expected 'def' or 'inductive'");
        syncTopLevel();
      }
    }
    return !DE.hasErrors();
  }

private:
  void advance() { Cur = Lex.next(); }

  bool error(const std::string &Message) { return errorAt(Cur.loc(), Message); }

  bool errorAt(SourceLoc Loc, const std::string &Message) {
    DE.error(Loc, Message);
    return false;
  }

  bool expect(Tok K, const char *What) {
    if (Cur.K != K)
      return error(std::string("expected ") + What + ", got '" +
                   (Cur.K == Tok::Eof ? "end of input" : Cur.Text) + "'");
    advance();
    return true;
  }

  //===------------------------------------------------------------------===//
  // Recovery
  //===------------------------------------------------------------------===//

  /// Skips to the next top-level 'def'/'inductive' (or EOF). Guarantees
  /// progress: parseDef/parseInductive always consume their keyword, so a
  /// failure with Cur already at a boundary resumes there directly.
  void syncTopLevel() {
    if (Cur.K == Tok::KwDef || Cur.K == Tok::KwInductive)
      return;
    if (Cur.K != Tok::Eof)
      advance();
    while (Cur.K != Tok::Eof && Cur.K != Tok::KwDef &&
           Cur.K != Tok::KwInductive && !DE.errorLimitReached())
      advance();
  }

  /// After an expression error, skips to one of \p Stops so parsing can
  /// continue locally (a let's ';', a match arm's '|' or 'end', an if's
  /// 'else'). Skipping is match-nesting aware: a 'match' opens a nesting
  /// level whose 'end' closes it without stopping. Returns false when a
  /// definition boundary, an enclosing 'end', or EOF is reached first —
  /// the caller then unwinds to def-level recovery.
  bool syncTo(std::initializer_list<Tok> Stops) {
    unsigned MatchDepth = 0;
    while (Cur.K != Tok::Eof && !DE.errorLimitReached()) {
      if (Cur.K == Tok::KwDef || Cur.K == Tok::KwInductive)
        return false;
      if (MatchDepth == 0) {
        for (Tok S : Stops)
          if (Cur.K == S)
            return true;
        if (Cur.K == Tok::KwEnd)
          return false; // closes an enclosing match
      } else if (Cur.K == Tok::KwEnd) {
        --MatchDepth;
        advance();
        continue;
      }
      if (Cur.K == Tok::KwMatch)
        ++MatchDepth;
      advance();
    }
    return false;
  }

  /// Monotone nesting budget shared by recursive descent and the
  /// iterative operator/argument loops (which build equally deep trees).
  /// Returns false (with a diagnostic) once the budget is exhausted.
  bool bumpDepth() {
    if (Depth >= MaxDepth) {
      if (!DepthDiagnosed) {
        DepthDiagnosed = true;
        error("expression nesting too deep (limit " +
              std::to_string(MaxDepth) + ")");
      }
      return false;
    }
    ++Depth;
    return true;
  }

  struct DepthScope {
    Parser &P;
    unsigned Saved;
    explicit DepthScope(Parser &P) : P(P), Saved(P.Depth) {}
    ~DepthScope() { P.Depth = Saved; }
  };

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  bool parseInductive(std::unordered_map<std::string, SCtorInfo> &Ctors,
                      std::unordered_map<std::string, unsigned> &InductiveSizes) {
    SourceLoc KwLoc = Cur.loc();
    advance(); // 'inductive'
    if (Cur.K != Tok::Ident)
      return error("expected inductive name");
    std::string TypeName = Cur.Text;
    SourceLoc NameLoc = Cur.loc();
    advance();
    if (!expect(Tok::Assign, "':='"))
      return false;
    int64_t Tag = 0;
    while (Cur.K == Tok::Pipe) {
      advance();
      if (Cur.K != Tok::Ident)
        return error("expected constructor name");
      std::string CtorName = Cur.Text;
      SourceLoc CtorLoc = Cur.loc();
      advance();
      unsigned Arity = 0;
      while (Cur.K == Tok::Ident || Cur.K == Tok::Underscore) {
        ++Arity;
        advance();
      }
      if (Ctors.count(CtorName))
        return errorAt(CtorLoc,
                       "constructor '" + CtorName + "' redeclared");
      Ctors[CtorName] = {TypeName, Tag++, Arity};
    }
    if (Tag == 0)
      return errorAt(NameLoc.isValid() ? NameLoc : KwLoc,
                     "inductive '" + TypeName + "' has no constructors");
    InductiveSizes[TypeName] = static_cast<unsigned>(Tag);
    return true;
  }

  bool parseDef(std::vector<SDef> &Defs) {
    SourceLoc Loc = Cur.loc();
    advance(); // 'def'
    if (Cur.K != Tok::Ident)
      return error("expected function name");
    SDef D;
    D.Name = Cur.Text;
    D.Loc = Loc;
    advance();
    while (Cur.K == Tok::Ident) {
      D.Params.push_back(Cur.Text);
      advance();
    }
    if (!expect(Tok::Assign, "':='"))
      return false;
    DepthScope Scope(*this);
    D.Body = parseExpr();
    if (!D.Body)
      return false;
    Defs.push_back(std::move(D));
    return true;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  SExprPtr parseExpr() {
    if (!bumpDepth())
      return nullptr;
    if (Cur.K == Tok::KwLet) {
      SourceLoc Loc = Cur.loc();
      advance();
      if (Cur.K != Tok::Ident) {
        error("expected binder after 'let'");
        return nullptr;
      }
      auto E = makeSExpr(SExpr::Kind::Let, Loc);
      E->Name = Cur.Text;
      advance();
      if (!expect(Tok::Assign, "':='"))
        return nullptr;
      E->Head = parseExpr();
      if (!E->Head) {
        // Recover at the let's ';' so the body still elaborates.
        if (!syncTo({Tok::Semi}))
          return nullptr;
        E->Head = makePlaceholder(Loc);
      }
      if (!expect(Tok::Semi, "';'"))
        return nullptr;
      E->Body = parseExpr();
      if (!E->Body)
        return nullptr;
      return E;
    }
    if (Cur.K == Tok::KwIf) {
      SourceLoc Loc = Cur.loc();
      advance();
      auto E = makeSExpr(SExpr::Kind::If, Loc);
      SExprPtr C = parseExpr();
      if (!C) {
        if (!syncTo({Tok::KwThen}))
          return nullptr;
        C = makePlaceholder(Loc);
      }
      if (!expect(Tok::KwThen, "'then'"))
        return nullptr;
      SExprPtr T = parseExpr();
      if (!T) {
        if (!syncTo({Tok::KwElse}))
          return nullptr;
        T = makePlaceholder(Loc);
      }
      if (!expect(Tok::KwElse, "'else'"))
        return nullptr;
      SExprPtr F = parseExpr();
      if (!F)
        return nullptr;
      E->Args.push_back(std::move(C));
      E->Args.push_back(std::move(T));
      E->Args.push_back(std::move(F));
      return E;
    }
    if (Cur.K == Tok::KwMatch)
      return parseMatch();
    if (Cur.K == Tok::KwFun) {
      SourceLoc Loc = Cur.loc();
      advance();
      auto E = makeSExpr(SExpr::Kind::Fun, Loc);
      while (Cur.K == Tok::Ident) {
        E->Params.push_back(Cur.Text);
        advance();
      }
      if (E->Params.empty()) {
        error("'fun' needs at least one parameter");
        return nullptr;
      }
      if (!expect(Tok::Arrow, "'=>'"))
        return nullptr;
      E->Body = parseExpr();
      if (!E->Body)
        return nullptr;
      return E;
    }
    return parseCompare();
  }

  SExprPtr parseMatch() {
    SourceLoc Loc = Cur.loc();
    advance(); // 'match'
    auto E = makeSExpr(SExpr::Kind::Match, Loc);
    while (true) {
      SExprPtr S = parseCompare();
      if (!S)
        return nullptr;
      E->Args.push_back(std::move(S));
      if (Cur.K != Tok::Comma)
        break;
      advance();
    }
    if (!expect(Tok::KwWith, "'with'"))
      return nullptr;
    while (Cur.K == Tok::Pipe) {
      if (!bumpDepth()) // arms become a chain of join declarations
        return nullptr;
      SMatchArm Arm;
      Arm.Loc = Cur.loc();
      advance();
      bool PatsOK = true;
      while (true) {
        std::optional<SPattern> P = parsePattern(/*AllowArgs=*/true);
        if (!P) {
          PatsOK = false;
          break;
        }
        Arm.Pats.push_back(std::move(*P));
        if (Cur.K != Tok::Comma)
          break;
        advance();
      }
      if (PatsOK && Arm.Pats.size() != E->Args.size()) {
        errorAt(Arm.Loc, "pattern arity does not match scrutinee count");
        PatsOK = false;
      }
      if (!PatsOK || !expect(Tok::Arrow, "'=>'")) {
        // Recover at the next arm or the 'end' of this match.
        if (!syncTo({Tok::Pipe, Tok::KwEnd}))
          return nullptr;
        continue; // drop the malformed arm
      }
      Arm.Rhs = parseExpr();
      if (!Arm.Rhs) {
        if (!syncTo({Tok::Pipe, Tok::KwEnd}))
          return nullptr;
        Arm.Rhs = makePlaceholder(Arm.Loc);
      }
      E->Arms.push_back(std::move(Arm));
    }
    if (E->Arms.empty()) {
      errorAt(Loc, "match with no arms");
      return nullptr;
    }
    if (!expect(Tok::KwEnd, "'end'"))
      return nullptr;
    return E;
  }

  /// Pattern atom or (with \p AllowArgs) a constructor application.
  std::optional<SPattern> parsePattern(bool AllowArgs) {
    if (!bumpDepth())
      return std::nullopt;
    SPattern P;
    P.Loc = Cur.loc();
    switch (Cur.K) {
    case Tok::Underscore:
      P.K = SPattern::Kind::Wildcard;
      advance();
      return P;
    case Tok::Int:
      P.K = SPattern::Kind::IntLit;
      P.Lit = BigInt::fromString(Cur.Text);
      advance();
      return P;
    case Tok::LParen: {
      advance();
      std::optional<SPattern> Inner = parsePattern(/*AllowArgs=*/true);
      if (!Inner)
        return std::nullopt;
      if (!expect(Tok::RParen, "')'"))
        return std::nullopt;
      return Inner;
    }
    case Tok::Ident: {
      P.Name = Cur.Text;
      advance();
      // Whether this is a variable or constructor is resolved during
      // elaboration (the parser has no ctor table). Collect argument
      // atoms greedily when allowed; a bare lower-case name with no args
      // may still be a nullary constructor.
      P.K = SPattern::Kind::Ctor; // provisional; resolver may turn to Var
      if (AllowArgs) {
        while (Cur.K == Tok::Underscore || Cur.K == Tok::Int ||
               Cur.K == Tok::LParen || Cur.K == Tok::Ident) {
          if (!bumpDepth())
            return std::nullopt;
          std::optional<SPattern> Sub = parsePattern(/*AllowArgs=*/false);
          if (!Sub)
            return std::nullopt;
          P.Subs.push_back(std::move(*Sub));
        }
      }
      return P;
    }
    default:
      error("expected pattern");
      return std::nullopt;
    }
  }

  SExprPtr parseCompare() {
    SExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    Tok K = Cur.K;
    if (K != Tok::EqEq && K != Tok::NotEq && K != Tok::Lt && K != Tok::Le &&
        K != Tok::Gt && K != Tok::Ge)
      return L;
    SourceLoc Loc = Cur.loc();
    advance();
    SExprPtr R = parseAdd();
    if (!R)
      return nullptr;
    return makeCmp(K, std::move(L), std::move(R), Loc);
  }

  SExprPtr makeBuiltinApp(const std::string &Name, SExprPtr A, SExprPtr B,
                          SourceLoc Loc) {
    auto E = makeSExpr(SExpr::Kind::App, Loc);
    auto H = makeSExpr(SExpr::Kind::Var, Loc);
    H->Name = Name;
    E->Head = std::move(H);
    E->Args.push_back(std::move(A));
    if (B)
      E->Args.push_back(std::move(B));
    return E;
  }

  SExprPtr makeCmp(Tok K, SExprPtr L, SExprPtr R, SourceLoc Loc) {
    switch (K) {
    case Tok::EqEq:
      return makeBuiltinApp("lean_nat_dec_eq", std::move(L), std::move(R),
                            Loc);
    case Tok::Lt:
      return makeBuiltinApp("lean_nat_dec_lt", std::move(L), std::move(R),
                            Loc);
    case Tok::Le:
      return makeBuiltinApp("lean_nat_dec_le", std::move(L), std::move(R),
                            Loc);
    case Tok::Gt: // a > b  ==  b < a
      return makeBuiltinApp("lean_nat_dec_lt", std::move(R), std::move(L),
                            Loc);
    case Tok::Ge: // a >= b  ==  b <= a
      return makeBuiltinApp("lean_nat_dec_le", std::move(R), std::move(L),
                            Loc);
    case Tok::NotEq: {
      // a != b  ==  1 - (a == b)
      SExprPtr Eq = makeBuiltinApp("lean_nat_dec_eq", std::move(L),
                                   std::move(R), Loc);
      auto One = makeSExpr(SExpr::Kind::Int, Loc);
      One->Lit = BigInt(1);
      return makeBuiltinApp("lean_int_sub", std::move(One), std::move(Eq),
                            Loc);
    }
    default:
      return nullptr;
    }
  }

  SExprPtr parseAdd() {
    SExprPtr L = parseMul();
    if (!L)
      return nullptr;
    while (Cur.K == Tok::Plus || Cur.K == Tok::Minus) {
      if (!bumpDepth()) // each link deepens the left-nested tree
        return nullptr;
      Tok K = Cur.K;
      SourceLoc Loc = Cur.loc();
      advance();
      SExprPtr R = parseMul();
      if (!R)
        return nullptr;
      L = makeBuiltinApp(K == Tok::Plus ? "lean_nat_add" : "lean_int_sub",
                         std::move(L), std::move(R), Loc);
    }
    return L;
  }

  SExprPtr parseMul() {
    SExprPtr L = parseApp();
    if (!L)
      return nullptr;
    while (Cur.K == Tok::Star || Cur.K == Tok::Slash ||
           Cur.K == Tok::Percent) {
      if (!bumpDepth())
        return nullptr;
      Tok K = Cur.K;
      SourceLoc Loc = Cur.loc();
      advance();
      SExprPtr R = parseApp();
      if (!R)
        return nullptr;
      const char *Name = K == Tok::Star    ? "lean_nat_mul"
                         : K == Tok::Slash ? "lean_nat_div"
                                           : "lean_nat_mod";
      L = makeBuiltinApp(Name, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  SExprPtr parseApp() {
    SExprPtr Head = parseAtom();
    if (!Head)
      return nullptr;
    std::vector<SExprPtr> Args;
    while (Cur.K == Tok::Int || Cur.K == Tok::Ident ||
           Cur.K == Tok::LParen) {
      if (!bumpDepth()) // argument count bounds elaborator recursion
        return nullptr;
      SExprPtr A = parseAtom();
      if (!A)
        return nullptr;
      Args.push_back(std::move(A));
    }
    if (Args.empty())
      return Head;
    auto E = makeSExpr(SExpr::Kind::App, Head->Loc);
    E->Head = std::move(Head);
    E->Args = std::move(Args);
    return E;
  }

  SExprPtr parseAtom() {
    switch (Cur.K) {
    case Tok::Int: {
      auto E = makeSExpr(SExpr::Kind::Int, Cur.loc());
      E->Lit = BigInt::fromString(Cur.Text);
      advance();
      return E;
    }
    case Tok::Ident: {
      auto E = makeSExpr(SExpr::Kind::Var, Cur.loc());
      E->Name = Cur.Text;
      advance();
      return E;
    }
    case Tok::LParen: {
      advance();
      SExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      if (!expect(Tok::RParen, "')'"))
        return nullptr;
      return E;
    }
    default:
      error("expected expression, got '" +
            (Cur.K == Tok::Eof ? "end of input" : Cur.Text) + "'");
      return nullptr;
    }
  }

  Lexer Lex;
  Token Cur;
  DiagnosticEngine &DE;
  unsigned MaxDepth;
  unsigned Depth = 0;
  bool DepthDiagnosed = false;
};

//===----------------------------------------------------------------------===//
// Elaborator: surface AST -> λpure ANF
//===----------------------------------------------------------------------===//

/// Surface-name to runtime-builtin aliases.
const std::pair<const char *, const char *> BuiltinAliases[] = {
    {"println", "lean_io_println"},   {"arrayMk", "lean_mk_array"},
    {"arrayGet", "lean_array_get"},   {"arraySet", "lean_array_set"},
    {"arrayPush", "lean_array_push"}, {"arraySize", "lean_array_size"},
    {"natSub", "lean_nat_sub"},       {"natDiv", "lean_nat_div"},
    {"natMod", "lean_nat_mod"},       {"intNeg", "lean_int_neg"},
    {"intDiv", "lean_int_div"},       {"intMod", "lean_int_mod"},
    {"intMul", "lean_int_mul"},       {"intAdd", "lean_int_add"},
};

/// Deep copy of a surface expression (for lambda lifting).
SExprPtr cloneSExpr(const SExpr &E) {
  auto C = makeSExpr(E.K, E.Loc);
  C->Lit = E.Lit;
  C->Name = E.Name;
  C->Params = E.Params;
  if (E.Head)
    C->Head = cloneSExpr(*E.Head);
  if (E.Body)
    C->Body = cloneSExpr(*E.Body);
  for (const SExprPtr &A : E.Args)
    C->Args.push_back(cloneSExpr(*A));
  for (const SMatchArm &Arm : E.Arms) {
    SMatchArm NA;
    NA.Pats = Arm.Pats;
    NA.Loc = Arm.Loc;
    NA.Rhs = cloneSExpr(*Arm.Rhs);
    C->Arms.push_back(std::move(NA));
  }
  return C;
}

class Elaborator {
public:
  Elaborator(const std::unordered_map<std::string, SCtorInfo> &Ctors,
             const std::unordered_map<std::string, unsigned> &InductiveSizes,
             std::unordered_map<std::string, unsigned> &FnArity,
             std::vector<SDef> &PendingDefs, DiagnosticEngine &DE)
      : Ctors(Ctors), InductiveSizes(InductiveSizes), FnArity(FnArity),
        PendingDefs(PendingDefs), DE(DE) {}

  bool elaborate(const SDef &D, Function &Out) {
    NextVar = 0;
    NextJoin = 0;
    HadError = false;
    Scopes.clear();
    Scopes.emplace_back();
    Out.Name = D.Name;
    for (const std::string &P : D.Params) {
      VarId V = NextVar++;
      Out.Params.push_back(V);
      Scopes.back()[P] = V;
    }
    FnBodyPtr Body =
        lower(*D.Body, [&](VarId V) { return makeRet(V); });
    // Errors can surface either as a null body or — when an inner
    // continuation failed — as a recorded diagnostic with a partial tree.
    if (!Body || HadError)
      return false;
    Out.Body = std::move(Body);
    Out.NumVars = NextVar;
    Out.NumJoins = NextJoin;
    return true;
  }

private:
  using Cont = std::function<FnBodyPtr(VarId)>;

  bool error(SourceLoc Loc, const std::string &Message) {
    HadError = true;
    DE.error(Loc, Message);
    return false;
  }

  VarId fresh() { return NextVar++; }

  VarId *resolveLocal(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  static Expr litExpr(const BigInt &Value) {
    Expr E;
    if (Value.fitsInt64() && Value.getInt64() >= rtMinSmall &&
        Value.getInt64() <= rtMaxSmall) {
      E.K = Expr::Kind::Lit;
      E.Tag = Value.getInt64();
    } else {
      E.K = Expr::Kind::BigLit;
      E.Big = Value;
    }
    return E;
  }

  // Mirrors runtime scalar bounds without including the runtime header.
  static constexpr int64_t rtMinSmall = -(1LL << 62);
  static constexpr int64_t rtMaxSmall = (1LL << 62) - 1;

  //===------------------------------------------------------------------===//
  // Expression lowering (continuation style)
  //===------------------------------------------------------------------===//

  FnBodyPtr lower(const SExpr &E, Cont K) {
    switch (E.K) {
    case SExpr::Kind::Int: {
      VarId V = fresh();
      return makeLet(V, litExpr(E.Lit), K(V));
    }
    case SExpr::Kind::Var:
      return lowerName(E, {}, std::move(K));
    case SExpr::Kind::Let: {
      const SExpr &Val = *E.Head;
      const SExpr &Body = *E.Body;
      return lower(Val, [&](VarId V) {
        Scopes.emplace_back();
        Scopes.back()[E.Name] = V;
        FnBodyPtr B = lower(Body, K);
        Scopes.pop_back();
        return B;
      });
    }
    case SExpr::Kind::App: {
      // Evaluate the head if it is not a plain name.
      if (E.Head->K == SExpr::Kind::Var)
        return lowerName(*E.Head, E.Args, std::move(K));
      return lower(*E.Head, [&](VarId H) {
        return lowerArgs(E.Args, 0, {}, [&, H](std::vector<VarId> ArgIds) {
          Expr AppE;
          AppE.K = Expr::Kind::VAp;
          AppE.Args.push_back(H);
          AppE.Args.insert(AppE.Args.end(), ArgIds.begin(), ArgIds.end());
          VarId V = fresh();
          return makeLet(V, std::move(AppE), K(V));
        });
      });
    }
    case SExpr::Kind::If: {
      const SExpr &CondE = *E.Args[0];
      const SExpr &ThenE = *E.Args[1];
      const SExpr &ElseE = *E.Args[2];
      return lower(CondE, [&](VarId C) {
        return withJoinSink(std::move(K), [&](const Cont &Sink) {
          // case c of 0 => else | default => then
          std::vector<Alt> Alts;
          Alt A0;
          A0.Tag = 0;
          A0.Body = lower(ElseE, Sink);
          if (!A0.Body)
            return FnBodyPtr();
          Alts.push_back(std::move(A0));
          FnBodyPtr Then = lower(ThenE, Sink);
          if (!Then)
            return FnBodyPtr();
          return makeCase(C, std::move(Alts), std::move(Then));
        });
      });
    }
    case SExpr::Kind::Match:
      return lowerMatch(E, std::move(K));
    case SExpr::Kind::Fun:
      return lowerFun(E, std::move(K));
    }
    return nullptr;
  }

  /// Lambda lifting (the process λrc's frontend performs before our IR
  /// sees the program, Section III-D / Figure 7): hoist the body to a
  /// fresh top-level function whose leading parameters are the captured
  /// locals, and materialize the lambda as a partial application over
  /// them — `fun x => e` becomes `lp.pap @_lambdaN(captured...)`.
  FnBodyPtr lowerFun(const SExpr &E, Cont K) {
    // Captured locals: free surface names of the body that resolve to
    // variables in the current scope, minus the lambda's own parameters.
    std::vector<std::string> Captured;
    std::unordered_set<std::string> Seen(E.Params.begin(), E.Params.end());
    collectCapturedNames(*E.Body, Seen, Captured);

    std::string LiftedName = "_lambda" + std::to_string(NextLambda++);
    SDef Lifted;
    Lifted.Name = LiftedName;
    Lifted.Loc = E.Loc;
    Lifted.Params = Captured;
    Lifted.Params.insert(Lifted.Params.end(), E.Params.begin(),
                         E.Params.end());
    Lifted.Body = cloneSExpr(*E.Body);
    FnArity[LiftedName] = static_cast<unsigned>(Lifted.Params.size());
    PendingDefs.push_back(std::move(Lifted));

    Expr Pap;
    Pap.K = Expr::Kind::PAp;
    Pap.Callee = LiftedName;
    for (const std::string &N : Captured) {
      VarId *V = resolveLocal(N);
      assert(V && "captured name does not resolve");
      Pap.Args.push_back(*V);
    }
    VarId V = fresh();
    return makeLet(V, std::move(Pap), K(V));
  }

  /// Collects free identifiers of \p E (in occurrence order) that resolve
  /// to locals of the *enclosing* function scope; \p Bound tracks names
  /// bound inside the lambda itself.
  void collectCapturedNames(const SExpr &E,
                            std::unordered_set<std::string> &Bound,
                            std::vector<std::string> &Out) {
    auto Consider = [&](const std::string &Name) {
      if (Bound.count(Name) || !resolveLocal(Name))
        return;
      for (const std::string &Existing : Out)
        if (Existing == Name)
          return;
      Out.push_back(Name);
    };
    switch (E.K) {
    case SExpr::Kind::Int:
      return;
    case SExpr::Kind::Var:
      Consider(E.Name);
      return;
    case SExpr::Kind::App:
      collectCapturedNames(*E.Head, Bound, Out);
      for (const SExprPtr &A : E.Args)
        collectCapturedNames(*A, Bound, Out);
      return;
    case SExpr::Kind::Let: {
      collectCapturedNames(*E.Head, Bound, Out);
      bool Inserted = Bound.insert(E.Name).second;
      collectCapturedNames(*E.Body, Bound, Out);
      if (Inserted)
        Bound.erase(E.Name);
      return;
    }
    case SExpr::Kind::If:
      for (const SExprPtr &A : E.Args)
        collectCapturedNames(*A, Bound, Out);
      return;
    case SExpr::Kind::Match: {
      for (const SExprPtr &S : E.Args)
        collectCapturedNames(*S, Bound, Out);
      for (const SMatchArm &Arm : E.Arms) {
        std::vector<std::string> ArmVars;
        for (SPattern P : Arm.Pats) { // copy: resolve without mutating
          resolvePattern(P, /*Diagnose=*/false);
          collectPatternVars(P, ArmVars);
        }
        std::vector<std::string> NewlyBound;
        for (const std::string &N : ArmVars)
          if (Bound.insert(N).second)
            NewlyBound.push_back(N);
        collectCapturedNames(*Arm.Rhs, Bound, Out);
        for (const std::string &N : NewlyBound)
          Bound.erase(N);
      }
      return;
    }
    case SExpr::Kind::Fun: {
      std::vector<std::string> NewlyBound;
      for (const std::string &N : E.Params)
        if (Bound.insert(N).second)
          NewlyBound.push_back(N);
      collectCapturedNames(*E.Body, Bound, Out);
      for (const std::string &N : NewlyBound)
        Bound.erase(N);
      return;
    }
    }
  }

  /// Wraps \p K in a join point when the construct has multiple exits, so
  /// each exit jumps instead of duplicating the continuation.
  FnBodyPtr withJoinSink(Cont K,
                         const std::function<FnBodyPtr(const Cont &)> &Gen) {
    JoinId J = NextJoin++;
    VarId Param = fresh();
    Cont Sink = [J](VarId V) { return makeJmp(J, {V}); };
    FnBodyPtr Body = Gen(Sink);
    if (!Body)
      return nullptr;
    return makeJDecl(J, {Param}, K(Param), std::move(Body));
  }

  /// Lowers a chain of argument expressions, then calls \p Done.
  FnBodyPtr lowerArgs(const std::vector<SExprPtr> &Args, size_t Index,
                      std::vector<VarId> Acc,
                      const std::function<FnBodyPtr(std::vector<VarId>)> &Done) {
    if (Index == Args.size())
      return Done(std::move(Acc));
    return lower(*Args[Index], [&](VarId V) {
      std::vector<VarId> NextAcc = Acc;
      NextAcc.push_back(V);
      return lowerArgs(Args, Index + 1, std::move(NextAcc), Done);
    });
  }

  /// Lowers an application (or bare reference) of a *named* head.
  FnBodyPtr lowerName(const SExpr &Head, const std::vector<SExprPtr> &Args,
                      Cont K) {
    const std::string &Name = Head.Name;
    SourceLoc Loc = Head.Loc;

    // Local variable.
    if (VarId *Local = resolveLocal(Name)) {
      VarId H = *Local;
      if (Args.empty())
        return K(H);
      return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
        Expr E;
        E.K = Expr::Kind::VAp;
        E.Args.push_back(H);
        E.Args.insert(E.Args.end(), ArgIds.begin(), ArgIds.end());
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      });
    }

    // Constructor.
    auto CtorIt = Ctors.find(Name);
    if (CtorIt != Ctors.end()) {
      const SCtorInfo &Info = CtorIt->second;
      if (Args.size() != Info.Arity) {
        error(Loc, "constructor '" + Name + "' expects " +
                       std::to_string(Info.Arity) + " arguments");
        return nullptr;
      }
      if (Info.Arity == 0) {
        // Nullary constructors are erased to scalar tags (as in LEAN).
        VarId V = fresh();
        return makeLet(V, litExpr(BigInt(Info.Tag)), K(V));
      }
      return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
        Expr E;
        E.K = Expr::Kind::Ctor;
        E.Tag = Info.Tag;
        E.Args = std::move(ArgIds);
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      });
    }

    // Runtime builtin (surface alias or direct lean_* name).
    std::string Builtin;
    for (auto [Alias, Target] : BuiltinAliases)
      if (Name == Alias)
        Builtin = Target;
    if (Builtin.empty() && isRuntimeBuiltin(Name))
      Builtin = Name;
    if (!Builtin.empty()) {
      unsigned Arity = runtimeBuiltinArity(Builtin);
      if (Args.size() != Arity) {
        error(Loc, "builtin '" + Name + "' expects " +
                       std::to_string(Arity) + " arguments");
        return nullptr;
      }
      return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
        Expr E;
        E.K = Expr::Kind::FAp;
        E.Callee = Builtin;
        E.Args = std::move(ArgIds);
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      });
    }

    // User function.
    auto FnIt = FnArity.find(Name);
    if (FnIt == FnArity.end()) {
      error(Loc, "unknown identifier '" + Name + "'");
      return nullptr;
    }
    unsigned Arity = FnIt->second;
    return lowerArgs(Args, 0, {}, [&](std::vector<VarId> ArgIds) {
      if (ArgIds.size() < Arity) {
        // Partial application builds a closure (lp.pap).
        Expr E;
        E.K = Expr::Kind::PAp;
        E.Callee = Name;
        E.Args = std::move(ArgIds);
        VarId V = fresh();
        return makeLet(V, std::move(E), K(V));
      }
      // Saturated call, possibly with surplus arguments applied to the
      // returned closure.
      std::vector<VarId> CallArgs(ArgIds.begin(), ArgIds.begin() + Arity);
      Expr E;
      E.K = Expr::Kind::FAp;
      E.Callee = Name;
      E.Args = std::move(CallArgs);
      VarId V = fresh();
      if (ArgIds.size() == Arity)
        return makeLet(V, std::move(E), K(V));
      Expr Over;
      Over.K = Expr::Kind::VAp;
      Over.Args.push_back(V);
      Over.Args.insert(Over.Args.end(), ArgIds.begin() + Arity,
                       ArgIds.end());
      VarId V2 = fresh();
      return makeLet(V, std::move(E),
                     makeLet(V2, std::move(Over), K(V2)));
    });
  }

  //===------------------------------------------------------------------===//
  // Match compilation (Maranget-style matrix, join point per arm)
  //===------------------------------------------------------------------===//

  struct Row {
    std::vector<SPattern> Pats;   // one per live occurrence
    size_t ArmIndex;
    std::unordered_map<std::string, VarId> Binds;
  };

  FnBodyPtr lowerMatch(const SExpr &E, Cont K) {
    return lowerArgs(E.Args, 0, {}, [&](std::vector<VarId> Occs) {
      return withJoinSink(std::move(K), [&](const Cont &Sink) {
        return compileArms(E, Occs, Sink);
      });
    });
  }

  /// Creates one join point per arm (the paper's Figure 5 deduplication),
  /// then compiles the pattern matrix whose leaves jump to them.
  FnBodyPtr compileArms(const SExpr &E, const std::vector<VarId> &Occs,
                        const Cont &Sink) {
    struct ArmInfo {
      JoinId Join;
      std::vector<std::string> VarNames; // parameter order
    };
    std::vector<ArmInfo> Arms;
    std::vector<FnBodyPtr> ArmBodies;
    std::vector<std::vector<VarId>> ArmParams;

    for (const SMatchArm &Arm : E.Arms) {
      ArmInfo Info;
      Info.Join = NextJoin++;
      // Resolve provisional constructor/variable patterns up front so the
      // right-hand side sees its pattern variables.
      for (SPattern &P : const_cast<SMatchArm &>(Arm).Pats)
        if (!resolvePattern(P, /*Diagnose=*/true))
          return nullptr;
      for (const SPattern &P : Arm.Pats)
        collectPatternVars(P, Info.VarNames);
      // Elaborate the right-hand side with parameters in scope.
      Scopes.emplace_back();
      std::vector<VarId> Params;
      for (const std::string &N : Info.VarNames) {
        VarId V = fresh();
        Params.push_back(V);
        Scopes.back()[N] = V;
      }
      FnBodyPtr Rhs = lower(*Arm.Rhs, Sink);
      Scopes.pop_back();
      if (!Rhs)
        return nullptr;
      ArmBodies.push_back(std::move(Rhs));
      ArmParams.push_back(std::move(Params));
      Arms.push_back(std::move(Info));
    }

    // An arm whose whole pattern row is irrefutable hides every later arm.
    for (size_t I = 0; I + 1 < E.Arms.size(); ++I) {
      bool Irrefutable = true;
      for (const SPattern &P : E.Arms[I].Pats)
        Irrefutable &= isWildcardLike(P);
      if (Irrefutable) {
        DE.warning(E.Arms[I + 1].Loc,
                   "unreachable match arm: a preceding pattern always "
                   "matches");
        break;
      }
    }

    // Matrix rows.
    std::vector<Row> Rows;
    for (size_t I = 0; I != E.Arms.size(); ++I) {
      Row R;
      R.Pats = clonePatterns(E.Arms[I].Pats);
      R.ArmIndex = I;
      Rows.push_back(std::move(R));
    }

    std::vector<ArmInfo> &ArmsRef = Arms;
    FnBodyPtr Tree = compileMatrix(Occs, std::move(Rows),
                                   [&](size_t ArmIndex,
                                       const std::unordered_map<std::string, VarId> &B)
                                       -> FnBodyPtr {
      std::vector<VarId> Args;
      for (const std::string &N : ArmsRef[ArmIndex].VarNames) {
        auto It = B.find(N);
        assert(It != B.end() && "pattern variable not bound at leaf");
        Args.push_back(It->second);
      }
      return makeJmp(ArmsRef[ArmIndex].Join, std::move(Args));
    });
    if (!Tree)
      return nullptr;

    // jdecl a_n ... jdecl a_0 ... tree (declared outermost-first so later
    // arms can be jumped to from anywhere in the tree).
    FnBodyPtr Result = std::move(Tree);
    for (size_t I = Arms.size(); I-- > 0;) {
      Result = makeJDecl(Arms[I].Join, std::move(ArmParams[I]),
                         std::move(ArmBodies[I]), std::move(Result));
    }
    return Result;
  }

  static void collectPatternVars(const SPattern &P,
                                 std::vector<std::string> &Out) {
    if (P.K == SPattern::Kind::Var) {
      Out.push_back(P.Name);
      return;
    }
    if (P.K == SPattern::Kind::Ctor)
      for (const SPattern &S : P.Subs)
        collectPatternVars(S, Out);
  }

  static std::vector<SPattern> clonePatterns(const std::vector<SPattern> &Ps) {
    return Ps; // SPattern is value-copyable
  }

  /// Resolves provisional Ctor patterns: names that are not declared
  /// constructors become variables. A non-constructor applied to
  /// subpatterns is a user error, diagnosed (untrusted input must never
  /// trip an assert) — subpatterns are dropped and the name binds.
  bool resolvePattern(SPattern &P, bool Diagnose) {
    if (P.K != SPattern::Kind::Ctor)
      return true;
    if (!Ctors.count(P.Name)) {
      if (!P.Subs.empty()) {
        if (Diagnose)
          return error(P.Loc, "'" + P.Name +
                                  "' is not a constructor but is applied "
                                  "to patterns");
        P.Subs.clear();
      }
      P.K = SPattern::Kind::Var;
      return true;
    }
    for (SPattern &S : P.Subs)
      if (!resolvePattern(S, Diagnose))
        return false;
    return true;
  }

  static bool isWildcardLike(const SPattern &P) {
    return P.K == SPattern::Kind::Wildcard || P.K == SPattern::Kind::Var;
  }

  using LeafFn =
      std::function<FnBodyPtr(size_t,
                              const std::unordered_map<std::string, VarId> &)>;

  FnBodyPtr compileMatrix(std::vector<VarId> Occs, std::vector<Row> Rows,
                          const LeafFn &Leaf) {
    if (Rows.empty())
      return makeUnreachable();

    for (Row &R : Rows)
      for (SPattern &P : R.Pats)
        if (!resolvePattern(P, /*Diagnose=*/true))
          return nullptr;

    // First row irrefutable -> bind its variables and jump to its arm.
    Row &First = Rows.front();
    bool AllWild = true;
    for (const SPattern &P : First.Pats)
      AllWild &= isWildcardLike(P);
    if (AllWild) {
      for (size_t C = 0; C != First.Pats.size(); ++C)
        if (First.Pats[C].K == SPattern::Kind::Var)
          First.Binds[First.Pats[C].Name] = Occs[C];
      return Leaf(First.ArmIndex, First.Binds);
    }

    // Pick the leftmost column with a refutable pattern.
    size_t Col = 0;
    for (; Col != First.Pats.size(); ++Col)
      if (!isWildcardLike(First.Pats[Col]))
        break;
    // (some row has a refutable pattern in Col — at least the first)

    bool HasCtor = false, HasInt = false;
    for (const Row &R : Rows) {
      if (R.Pats[Col].K == SPattern::Kind::Ctor)
        HasCtor = true;
      if (R.Pats[Col].K == SPattern::Kind::IntLit)
        HasInt = true;
    }
    if (HasCtor && HasInt) {
      error(First.Pats[Col].Loc,
            "mixed integer and constructor patterns in one column");
      return nullptr;
    }
    if (HasInt)
      return compileIntColumn(std::move(Occs), std::move(Rows), Col, Leaf);
    return compileCtorColumn(std::move(Occs), std::move(Rows), Col, Leaf);
  }

  FnBodyPtr compileCtorColumn(std::vector<VarId> Occs, std::vector<Row> Rows,
                              size_t Col, const LeafFn &Leaf) {
    // Group rows by head constructor (declaration-tag order for output).
    std::map<int64_t, const SCtorInfo *> Heads;
    std::string Inductive;
    for (const Row &R : Rows) {
      if (R.Pats[Col].K != SPattern::Kind::Ctor)
        continue;
      const SCtorInfo &Info = Ctors.at(R.Pats[Col].Name);
      Heads.emplace(Info.Tag, &Info);
      Inductive = Info.Inductive;
    }

    VarId Scrut = Occs[Col];
    std::vector<Alt> Alts;
    for (auto &[Tag, Info] : Heads) {
      // Fresh variables for the constructor fields.
      std::vector<VarId> Fields;
      for (unsigned I = 0; I != Info->Arity; ++I)
        Fields.push_back(fresh());

      // Specialized occurrence vector.
      std::vector<VarId> SubOccs;
      for (size_t C = 0; C != Occs.size(); ++C) {
        if (C == Col)
          SubOccs.insert(SubOccs.end(), Fields.begin(), Fields.end());
        else
          SubOccs.push_back(Occs[C]);
      }

      // Specialized rows.
      std::vector<Row> SubRows;
      for (const Row &R : Rows) {
        const SPattern &P = R.Pats[Col];
        Row NR;
        NR.ArmIndex = R.ArmIndex;
        NR.Binds = R.Binds;
        if (P.K == SPattern::Kind::Ctor) {
          if (Ctors.at(P.Name).Tag != Tag)
            continue;
          if (P.Subs.size() != Info->Arity) {
            error(P.Loc, "constructor '" + P.Name + "' expects " +
                             std::to_string(Info->Arity) +
                             " pattern arguments, got " +
                             std::to_string(P.Subs.size()));
            return nullptr;
          }
          for (size_t C = 0; C != R.Pats.size(); ++C) {
            if (C == Col)
              NR.Pats.insert(NR.Pats.end(), P.Subs.begin(), P.Subs.end());
            else
              NR.Pats.push_back(R.Pats[C]);
          }
        } else { // wildcard-like row participates in every group
          if (P.K == SPattern::Kind::Var)
            NR.Binds[P.Name] = Scrut;
          for (size_t C = 0; C != R.Pats.size(); ++C) {
            if (C == Col) {
              for (unsigned I = 0; I != Info->Arity; ++I)
                NR.Pats.push_back(SPattern());
            } else {
              NR.Pats.push_back(R.Pats[C]);
            }
          }
        }
        SubRows.push_back(std::move(NR));
      }

      FnBodyPtr SubTree = compileMatrix(SubOccs, std::move(SubRows), Leaf);
      if (!SubTree)
        return nullptr;
      // Prefix with the field projections.
      for (size_t I = Fields.size(); I-- > 0;) {
        Expr Proj;
        Proj.K = Expr::Kind::Proj;
        Proj.Tag = static_cast<int64_t>(I);
        Proj.Args.push_back(Scrut);
        SubTree = makeLet(Fields[I], std::move(Proj), std::move(SubTree));
      }
      Alt A;
      A.Tag = Tag;
      A.Body = std::move(SubTree);
      Alts.push_back(std::move(A));
    }

    // Default: rows with wildcard-like patterns in this column.
    FnBodyPtr Default;
    bool Exhaustive =
        !Inductive.empty() && Heads.size() == InductiveSizes.at(Inductive);
    std::vector<Row> DefaultRows;
    for (const Row &R : Rows) {
      const SPattern &P = R.Pats[Col];
      if (!isWildcardLike(P))
        continue;
      Row NR;
      NR.ArmIndex = R.ArmIndex;
      NR.Binds = R.Binds;
      if (P.K == SPattern::Kind::Var)
        NR.Binds[P.Name] = Scrut;
      for (size_t C = 0; C != R.Pats.size(); ++C)
        if (C != Col)
          NR.Pats.push_back(R.Pats[C]);
      DefaultRows.push_back(std::move(NR));
    }
    if (!Exhaustive || !DefaultRows.empty()) {
      std::vector<VarId> DefOccs;
      for (size_t C = 0; C != Occs.size(); ++C)
        if (C != Col)
          DefOccs.push_back(Occs[C]);
      Default = compileMatrix(std::move(DefOccs), std::move(DefaultRows),
                              Leaf);
      if (!Default)
        return nullptr;
    }
    if (!Default) {
      // Exhaustive over the inductive: the last alternative becomes the
      // default arm (lp.switch always carries an @default region).
      Default = std::move(Alts.back().Body);
      Alts.pop_back();
    }
    return makeCase(Scrut, std::move(Alts), std::move(Default));
  }

  FnBodyPtr compileIntColumn(std::vector<VarId> Occs, std::vector<Row> Rows,
                             size_t Col, const LeafFn &Leaf) {
    // Staged integer matching (paper Figure 4): test literals one by one
    // with @lean_nat_dec_eq, falling through to the remaining matrix.
    const SPattern &P = Rows.front().Pats[Col];
    if (isWildcardLike(P)) {
      // First row is irrefutable in this column but refutable elsewhere;
      // fall back to the generic splitter on another column by rotating:
      // compileMatrix picks the first refutable column of row 0, which is
      // not Col — so simply re-enter.
      return compileMatrix(std::move(Occs), std::move(Rows), Leaf);
    }
    BigInt Lit = P.Lit;

    // Specialized matrix: rows whose Col is Lit or wildcard-like.
    std::vector<Row> EqRows;
    std::vector<Row> RestRows;
    VarId Scrut = Occs[Col];
    for (const Row &R : Rows) {
      const SPattern &RP = R.Pats[Col];
      if (RP.K == SPattern::Kind::IntLit && RP.Lit == Lit) {
        Row NR;
        NR.ArmIndex = R.ArmIndex;
        NR.Binds = R.Binds;
        for (size_t C = 0; C != R.Pats.size(); ++C)
          if (C != Col)
            NR.Pats.push_back(R.Pats[C]);
        EqRows.push_back(std::move(NR));
      } else if (isWildcardLike(RP)) {
        Row NR;
        NR.ArmIndex = R.ArmIndex;
        NR.Binds = R.Binds;
        if (RP.K == SPattern::Kind::Var)
          NR.Binds[RP.Name] = Scrut;
        for (size_t C = 0; C != R.Pats.size(); ++C)
          if (C != Col)
            NR.Pats.push_back(R.Pats[C]);
        EqRows.push_back(std::move(NR));
        RestRows.push_back(R);
      } else {
        RestRows.push_back(R);
      }
    }

    std::vector<VarId> EqOccs;
    for (size_t C = 0; C != Occs.size(); ++C)
      if (C != Col)
        EqOccs.push_back(Occs[C]);

    FnBodyPtr EqTree = compileMatrix(std::move(EqOccs), std::move(EqRows),
                                     Leaf);
    if (!EqTree)
      return nullptr;
    FnBodyPtr RestTree = compileMatrix(Occs, std::move(RestRows), Leaf);
    if (!RestTree)
      return nullptr;

    VarId LitVar = fresh();
    VarId TestVar = fresh();
    Expr TestE;
    TestE.K = Expr::Kind::FAp;
    TestE.Callee = "lean_nat_dec_eq";
    TestE.Args = {Scrut, LitVar};

    std::vector<Alt> Alts;
    Alt A0;
    A0.Tag = 0; // not equal
    A0.Body = std::move(RestTree);
    Alts.push_back(std::move(A0));
    FnBodyPtr CaseB =
        makeCase(TestVar, std::move(Alts), std::move(EqTree));
    return makeLet(LitVar, litExpr(Lit),
                   makeLet(TestVar, std::move(TestE), std::move(CaseB)));
  }

  const std::unordered_map<std::string, SCtorInfo> &Ctors;
  const std::unordered_map<std::string, unsigned> &InductiveSizes;
  std::unordered_map<std::string, unsigned> &FnArity;
  std::vector<SDef> &PendingDefs;
  DiagnosticEngine &DE;
  bool HadError = false;

  uint32_t NextVar = 0;
  uint32_t NextJoin = 0;
  uint32_t NextLambda = 0;
  std::vector<std::unordered_map<std::string, VarId>> Scopes;
};

} // namespace

LogicalResult lambda::parseMiniLean(std::string_view Source, Program &Out,
                                    DiagnosticEngine &DE,
                                    const ParseOptions &Opts) {
  std::vector<SDef> Defs;
  std::unordered_map<std::string, SCtorInfo> Ctors;
  std::unordered_map<std::string, unsigned> InductiveSizes;
  Parser P(Source, DE, Opts.MaxNestingDepth);
  P.parseProgram(Defs, Ctors, InductiveSizes);

  // Arity table over the surviving definitions; duplicates are diagnosed
  // and the later definition dropped so elaboration can continue.
  std::unordered_map<std::string, unsigned> FnArity;
  std::vector<SDef> Unique;
  for (SDef &D : Defs) {
    if (FnArity.count(D.Name)) {
      DE.error(D.Loc, "function '" + D.Name + "' defined twice");
      continue;
    }
    FnArity[D.Name] = static_cast<unsigned>(D.Params.size());
    Unique.push_back(std::move(D));
  }

  // Lambda lifting appends fresh definitions while elaborating, so the
  // worklist grows; lifted functions are elaborated like any other. A
  // failed definition is skipped (its diagnostics are already recorded)
  // so every definition gets checked in one run.
  std::vector<SDef> Pending;
  Elaborator E(Ctors, InductiveSizes, FnArity, Pending, DE);
  std::vector<SDef> Work = std::move(Unique);
  for (size_t I = 0; I != Work.size() && !DE.errorLimitReached(); ++I) {
    Function F;
    if (E.elaborate(Work[I], F)) {
      Out.add(std::move(F));
      for (SDef &L : Pending)
        Work.push_back(std::move(L));
    }
    // Lifted defs of a failed elaboration are dropped: their bodies were
    // cloned from the failing definition and would only cascade.
    Pending.clear();
  }
  return DE.hasErrors() ? failure() : success();
}

LogicalResult lambda::parseMiniLean(std::string_view Source, Program &Out,
                                    std::string &ErrorMessage) {
  ErrorMessage.clear();
  DiagnosticEngine DE;
  DE.setSourceBuffer("input", Source);
  LogicalResult R = parseMiniLean(Source, Out, DE);
  if (failed(R))
    ErrorMessage = DE.firstErrorString();
  return R;
}
