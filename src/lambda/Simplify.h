//===- Simplify.h - the baseline λpure simplifier ---------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-written λpure simplifier standing in for LEAN4's λrc
/// simplifier — the *baseline* optimizer of the paper's Figure 10
/// experiment. It implements, as ad-hoc IR-tree transformations, exactly
/// the optimizations the rgn dialect recovers through classical SSA
/// reasoning:
///
///   * simp_case: case-of-known-constructor selection (the pass the paper
///     disables for variant (b): "we disable LEAN's simpcase pass which
///     performs rgn style switch simplification"),
///   * dead let elimination,
///   * case-with-identical-arms fusion (common branch elimination),
///   * copy propagation, constant folding of builtin arithmetic,
///   * single-use / trivial join point inlining, dead join removal.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_LAMBDA_SIMPLIFY_H
#define LZ_LAMBDA_SIMPLIFY_H

#include "lambda/LambdaIR.h"

namespace lz::lambda {

/// Simplifier pass selection, for ablations and the Fig. 10 variants.
struct SimplifyOptions {
  bool SimpCase = true;      ///< case-of-known-constructor
  bool DeadLet = true;       ///< drop unused pure lets
  bool CommonBranch = true;  ///< fuse identical case arms
  bool CopyProp = true;      ///< let x = var y substitution
  bool ConstFold = true;     ///< fold builtin arithmetic on literals
  bool InlineJoins = true;   ///< inline single-use joins, drop dead ones
  unsigned MaxRounds = 8;
};

/// Runs the simplifier over every function in \p P to a fixpoint (bounded
/// by MaxRounds). Returns true if anything changed.
bool simplifyProgram(Program &P, const SimplifyOptions &Opts = {});

} // namespace lz::lambda

#endif // LZ_LAMBDA_SIMPLIFY_H
