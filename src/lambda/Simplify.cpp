//===- Simplify.cpp - the baseline λpure simplifier ---------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lambda/Simplify.h"

#include <cassert>
#include <optional>
#include <unordered_map>

using namespace lz;
using namespace lz::lambda;

namespace {

//===----------------------------------------------------------------------===//
// Use counting
//===----------------------------------------------------------------------===//

void countVarUses(const FnBody &B, std::unordered_map<VarId, unsigned> &Counts) {
  auto Use = [&](VarId V) { ++Counts[V]; };
  switch (B.K) {
  case FnBody::Kind::Let:
    for (VarId A : B.E.Args)
      Use(A);
    countVarUses(*B.Next, Counts);
    return;
  case FnBody::Kind::JDecl:
    countVarUses(*B.JBody, Counts);
    countVarUses(*B.Next, Counts);
    return;
  case FnBody::Kind::Case:
    Use(B.Var);
    for (const Alt &A : B.Alts)
      countVarUses(*A.Body, Counts);
    if (B.Default)
      countVarUses(*B.Default, Counts);
    return;
  case FnBody::Kind::Ret:
    Use(B.Var);
    return;
  case FnBody::Kind::Jmp:
    for (VarId A : B.Args)
      Use(A);
    return;
  case FnBody::Kind::Inc:
  case FnBody::Kind::Dec:
    Use(B.Var);
    countVarUses(*B.Next, Counts);
    return;
  case FnBody::Kind::Unreachable:
    return;
  }
}

unsigned countJmps(const FnBody &B, JoinId J) {
  switch (B.K) {
  case FnBody::Kind::Let:
  case FnBody::Kind::Inc:
  case FnBody::Kind::Dec:
    return countJmps(*B.Next, J);
  case FnBody::Kind::JDecl:
    return countJmps(*B.JBody, J) + countJmps(*B.Next, J);
  case FnBody::Kind::Case: {
    unsigned N = 0;
    for (const Alt &A : B.Alts)
      N += countJmps(*A.Body, J);
    if (B.Default)
      N += countJmps(*B.Default, J);
    return N;
  }
  case FnBody::Kind::Jmp:
    return B.Join == J ? 1 : 0;
  case FnBody::Kind::Ret:
  case FnBody::Kind::Unreachable:
    return 0;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Freshening clone (for join inlining)
//===----------------------------------------------------------------------===//

FnBodyPtr freshenClone(const FnBody &B,
                       std::unordered_map<VarId, VarId> &VarMap,
                       std::unordered_map<JoinId, JoinId> &JoinMap,
                       uint32_t &NextVar,
                       uint32_t &NextJoin) {
  auto MapUse = [&](VarId V) {
    auto It = VarMap.find(V);
    return It == VarMap.end() ? V : It->second;
  };
  auto MapDef = [&](VarId V) {
    VarId N = NextVar++;
    VarMap[V] = N;
    return N;
  };

  auto R = std::make_unique<FnBody>();
  R->K = B.K;
  switch (B.K) {
  case FnBody::Kind::Let: {
    R->E = B.E;
    for (VarId &A : R->E.Args)
      A = MapUse(A);
    R->Var = MapDef(B.Var);
    R->Next = freshenClone(*B.Next, VarMap, JoinMap, NextVar, NextJoin);
    return R;
  }
  case FnBody::Kind::JDecl: {
    JoinId NJ = NextJoin++;
    JoinMap[B.Join] = NJ;
    R->Join = NJ;
    for (VarId P : B.Params)
      R->Params.push_back(MapDef(P));
    R->JBody = freshenClone(*B.JBody, VarMap, JoinMap, NextVar, NextJoin);
    R->Next = freshenClone(*B.Next, VarMap, JoinMap, NextVar, NextJoin);
    return R;
  }
  case FnBody::Kind::Case:
    R->Var = MapUse(B.Var);
    for (const Alt &A : B.Alts) {
      Alt NA;
      NA.Tag = A.Tag;
      NA.Body = freshenClone(*A.Body, VarMap, JoinMap, NextVar, NextJoin);
      R->Alts.push_back(std::move(NA));
    }
    if (B.Default)
      R->Default = freshenClone(*B.Default, VarMap, JoinMap, NextVar,
                                NextJoin);
    return R;
  case FnBody::Kind::Ret:
    R->Var = MapUse(B.Var);
    return R;
  case FnBody::Kind::Jmp: {
    auto It = JoinMap.find(B.Join);
    R->Join = It == JoinMap.end() ? B.Join : It->second;
    for (VarId A : B.Args)
      R->Args.push_back(MapUse(A));
    return R;
  }
  case FnBody::Kind::Inc:
  case FnBody::Kind::Dec:
    R->Var = MapUse(B.Var);
    R->Next = freshenClone(*B.Next, VarMap, JoinMap, NextVar, NextJoin);
    return R;
  case FnBody::Kind::Unreachable:
    return R;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// The rewriter
//===----------------------------------------------------------------------===//

class Simplifier {
public:
  Simplifier(Function &F, const SimplifyOptions &Opts) : F(F), Opts(Opts) {}

  bool run() {
    bool Any = false;
    for (unsigned Round = 0; Round != Opts.MaxRounds; ++Round) {
      Changed = false;
      Subst.clear();
      KnownDefs.clear();
      Joins.clear();
      F.Body = rewrite(std::move(F.Body));
      Any |= Changed;
      if (!Changed)
        break;
    }
    return Any;
  }

private:
  VarId resolve(VarId V) const {
    auto It = Subst.find(V);
    while (It != Subst.end()) {
      V = It->second;
      It = Subst.find(V);
    }
    return V;
  }

  void resolveExprArgs(Expr &E) {
    for (VarId &A : E.Args)
      A = resolve(A);
  }

  const Expr *knownDef(VarId V) const {
    auto It = KnownDefs.find(V);
    return It == KnownDefs.end() ? nullptr : &It->second;
  }

  static bool isPureExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Ctor:
    case Expr::Kind::Proj:
    case Expr::Kind::Lit:
    case Expr::Kind::BigLit:
    case Expr::Kind::Var:
    case Expr::Kind::PAp:
      return true;
    case Expr::Kind::FAp:
    case Expr::Kind::VAp:
      return false;
    }
    return false;
  }

  /// Constant folds builtin arithmetic on literal operands.
  bool tryConstFold(Expr &E) {
    if (E.K != Expr::Kind::FAp || E.Args.size() != 2)
      return false;
    const Expr *L = knownDef(E.Args[0]);
    const Expr *R = knownDef(E.Args[1]);
    auto LitOf = [](const Expr *D) -> std::optional<BigInt> {
      if (!D)
        return std::nullopt;
      if (D->K == Expr::Kind::Lit)
        return BigInt(D->Tag);
      if (D->K == Expr::Kind::BigLit)
        return D->Big;
      return std::nullopt;
    };
    std::optional<BigInt> LV = LitOf(L), RV = LitOf(R);
    if (!LV || !RV)
      return false;
    BigInt Out;
    const std::string &N = E.Callee;
    if (N == "lean_nat_add" || N == "lean_int_add")
      Out = *LV + *RV;
    else if (N == "lean_int_sub")
      Out = *LV - *RV;
    else if (N == "lean_nat_sub") {
      Out = *LV - *RV;
      if (Out.isNegative())
        Out = BigInt(0);
    } else if (N == "lean_nat_mul" || N == "lean_int_mul")
      Out = *LV * *RV;
    else if (N == "lean_nat_div" || N == "lean_int_div")
      Out = RV->isZero() ? BigInt(0) : *LV / *RV;
    else if (N == "lean_nat_mod" || N == "lean_int_mod")
      Out = RV->isZero() ? *LV : *LV % *RV;
    else if (N == "lean_nat_dec_eq" || N == "lean_int_dec_eq")
      Out = BigInt(*LV == *RV ? 1 : 0);
    else if (N == "lean_nat_dec_lt" || N == "lean_int_dec_lt")
      Out = BigInt(*LV < *RV ? 1 : 0);
    else if (N == "lean_nat_dec_le" || N == "lean_int_dec_le")
      Out = BigInt(*LV <= *RV ? 1 : 0);
    else
      return false;
    Expr NewE;
    if (Out.fitsInt64()) {
      NewE.K = Expr::Kind::Lit;
      NewE.Tag = Out.getInt64();
    } else {
      NewE.K = Expr::Kind::BigLit;
      NewE.Big = Out;
    }
    E = std::move(NewE);
    return true;
  }

  FnBodyPtr rewrite(FnBodyPtr B) {
    switch (B->K) {
    case FnBody::Kind::Let: {
      resolveExprArgs(B->E);

      // Copy propagation.
      if (Opts.CopyProp && B->E.K == Expr::Kind::Var) {
        Subst[B->Var] = B->E.Args[0];
        Changed = true;
        return rewrite(std::move(B->Next));
      }
      // Projection of a known constructor forwards the field.
      if (Opts.CopyProp && B->E.K == Expr::Kind::Proj) {
        if (const Expr *D = knownDef(B->E.Args[0])) {
          if (D->K == Expr::Kind::Ctor) {
            Subst[B->Var] = D->Args[static_cast<size_t>(B->E.Tag)];
            Changed = true;
            return rewrite(std::move(B->Next));
          }
        }
      }
      if (Opts.ConstFold && tryConstFold(B->E))
        Changed = true;

      if (B->E.K == Expr::Kind::Ctor || B->E.K == Expr::Kind::Lit ||
          B->E.K == Expr::Kind::BigLit)
        KnownDefs[B->Var] = B->E;

      B->Next = rewrite(std::move(B->Next));

      // Dead let elimination.
      if (Opts.DeadLet && isPureExpr(B->E)) {
        std::unordered_map<VarId, unsigned> Counts;
        countVarUses(*B->Next, Counts);
        if (Counts[B->Var] == 0) {
          Changed = true;
          return std::move(B->Next);
        }
      }
      return B;
    }

    case FnBody::Kind::JDecl: {
      B->JBody = rewrite(std::move(B->JBody));
      // Register for potential inlining before rewriting the continuation,
      // so Jmp sites seen below can splice the body in.
      unsigned Uses = countJmps(*B->Next, B->Join);
      bool Small = B->JBody->K == FnBody::Kind::Ret ||
                   B->JBody->K == FnBody::Kind::Jmp ||
                   B->JBody->K == FnBody::Kind::Unreachable;
      bool Inline = Opts.InlineJoins && (Uses <= 1 || Small);
      if (Inline)
        Joins[B->Join] = {&B->Params, B->JBody.get()};
      B->Next = rewrite(std::move(B->Next));
      if (Inline)
        Joins.erase(B->Join);

      if (Opts.InlineJoins) {
        unsigned RemainingUses = countJmps(*B->Next, B->Join);
        if (RemainingUses == 0) {
          Changed = true;
          return std::move(B->Next);
        }
      }
      return B;
    }

    case FnBody::Kind::Case: {
      B->Var = resolve(B->Var);

      // simp_case: case of a known constructor or literal.
      if (Opts.SimpCase) {
        if (const Expr *D = knownDef(B->Var)) {
          int64_t Tag = -1;
          bool Known = false;
          if (D->K == Expr::Kind::Ctor || D->K == Expr::Kind::Lit) {
            Tag = D->Tag;
            Known = true;
          }
          if (Known) {
            FnBodyPtr Chosen;
            for (Alt &A : B->Alts)
              if (A.Tag == Tag)
                Chosen = std::move(A.Body);
            if (!Chosen && B->Default)
              Chosen = std::move(B->Default);
            if (Chosen) {
              Changed = true;
              return rewrite(std::move(Chosen));
            }
          }
        }
      }

      for (Alt &A : B->Alts)
        A.Body = rewrite(std::move(A.Body));
      if (B->Default)
        B->Default = rewrite(std::move(B->Default));

      // Common branch elimination: all arms identical.
      if (Opts.CommonBranch && !B->Alts.empty()) {
        bool AllSame = true;
        for (const Alt &A : B->Alts)
          AllSame &= bodiesEqual(*A.Body, *B->Alts.front().Body);
        if (B->Default)
          AllSame &= bodiesEqual(*B->Default, *B->Alts.front().Body);
        if (AllSame) {
          Changed = true;
          return std::move(B->Alts.front().Body);
        }
      }
      return B;
    }

    case FnBody::Kind::Ret:
      B->Var = resolve(B->Var);
      return B;

    case FnBody::Kind::Jmp: {
      for (VarId &A : B->Args)
        A = resolve(A);
      auto It = Joins.find(B->Join);
      if (It == Joins.end())
        return B;
      // Inline the join body with parameters substituted by arguments.
      const JoinDef &J = It->second;
      std::unordered_map<VarId, VarId> VarMap;
      std::unordered_map<JoinId, JoinId> JoinMap;
      FnBodyPtr Clone =
          freshenClone(*J.Body, VarMap, JoinMap, F.NumVars, F.NumJoins);
      for (size_t I = 0; I != J.Params->size(); ++I) {
        auto PIt = VarMap.find((*J.Params)[I]);
        VarId ParamVar =
            PIt == VarMap.end() ? (*J.Params)[I] : PIt->second;
        Subst[ParamVar] = B->Args[I];
      }
      Changed = true;
      return rewrite(std::move(Clone));
    }

    case FnBody::Kind::Inc:
    case FnBody::Kind::Dec:
      B->Var = resolve(B->Var);
      B->Next = rewrite(std::move(B->Next));
      return B;

    case FnBody::Kind::Unreachable:
      return B;
    }
    return B;
  }

  struct JoinDef {
    const std::vector<VarId> *Params;
    const FnBody *Body;
  };

  Function &F;
  const SimplifyOptions &Opts;
  bool Changed = false;
  // Lookup-only tables on dense integer ids: hashed containers, no
  // ordered iteration anywhere (deterministic output is id-driven).
  std::unordered_map<VarId, VarId> Subst;
  std::unordered_map<VarId, Expr> KnownDefs;
  std::unordered_map<JoinId, JoinDef> Joins;
};

} // namespace

bool lambda::simplifyProgram(Program &P, const SimplifyOptions &Opts) {
  bool Any = false;
  for (Function &F : P.Functions) {
    Simplifier S(F, Opts);
    Any |= S.run();
  }
  return Any;
}
