//===- Interp.cpp - reference interpreter for λpure ----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lambda/Interp.h"

#include <cassert>
#include <cstdlib>
#include <map>

using namespace lz;
using namespace lz::lambda;

OVal lambda::makeOInt(const BigInt &Value) {
  auto V = std::make_shared<OValue>();
  V->K = OValue::Kind::Int;
  V->I = Value;
  return V;
}

OVal lambda::makeOInt(int64_t Value) { return makeOInt(BigInt(Value)); }

std::string lambda::displayOValue(const OVal &V) {
  switch (V->K) {
  case OValue::Kind::Int:
    return V->I.toString();
  case OValue::Kind::Ctor: {
    std::string S = "#" + std::to_string(V->Tag) + "(";
    for (size_t I = 0; I != V->Fields.size(); ++I) {
      if (I)
        S += ", ";
      S += displayOValue(V->Fields[I]);
    }
    return S + ")";
  }
  case OValue::Kind::Closure:
    return "<closure/" + std::to_string(V->Tag) + ">";
  case OValue::Kind::Array: {
    std::string S = "[";
    for (size_t I = 0; I != V->Fields.size(); ++I) {
      if (I)
        S += ", ";
      S += displayOValue(V->Fields[I]);
    }
    return S + "]";
  }
  case OValue::Kind::Str:
    return V->S;
  }
  return "<?>";
}

namespace {

class Interpreter {
public:
  Interpreter(const Program &P, std::string &Output) : P(P), Output(Output) {}

  /// Calls a function; direct tail calls are executed iteratively so the
  /// oracle matches the compiled pipelines' guaranteed TCO (deep tail
  /// recursion must not exhaust the host stack).
  OVal call(std::string Name, std::vector<OVal> Args) {
    while (true) {
      const Function *F = P.lookup(Name);
      if (!F) {
        assert(false && "oracle: unknown function");
        std::abort();
      }
      assert(Args.size() == F->Params.size() && "oracle: arity mismatch");
      std::vector<OVal> Env(F->NumVars);
      for (size_t I = 0; I != Args.size(); ++I)
        Env[F->Params[I]] = std::move(Args[I]);
      Outcome O = evalBody(*F, F->Body.get(), Env);
      if (!O.IsTailCall)
        return O.V;
      Name = std::move(O.Fn);
      Args = std::move(O.Args);
    }
  }

private:
  struct JoinDef {
    const std::vector<VarId> *Params;
    const FnBody *Body;
  };

  /// Either a final value or a pending direct tail call.
  struct Outcome {
    OVal V;
    bool IsTailCall = false;
    std::string Fn;
    std::vector<OVal> Args;
  };

  /// True if executing \p B with \p R bound returns R unchanged: `ret R`,
  /// or `jmp j(R)` where join j's body is itself a return continuation of
  /// its sole parameter.
  static bool isReturnContinuation(const FnBody *B, VarId R,
                                   const std::map<JoinId, JoinDef> &Joins) {
    for (unsigned Depth = 0; Depth != 16; ++Depth) {
      if (B->K == FnBody::Kind::Ret)
        return B->Var == R;
      if (B->K != FnBody::Kind::Jmp || B->Args.size() != 1 ||
          B->Args[0] != R)
        return false;
      auto It = Joins.find(B->Join);
      if (It == Joins.end() || It->second.Params->size() != 1)
        return false;
      R = (*It->second.Params)[0];
      B = It->second.Body;
    }
    return false;
  }

  Outcome evalBody(const Function & /*F*/, const FnBody *B,
                   std::vector<OVal> &Env) {
    std::map<JoinId, JoinDef> Joins;
    while (true) {
      switch (B->K) {
      case FnBody::Kind::Let: {
        // Direct tail call: let r = f(args) whose continuation — possibly
        // through a chain of jumps to unary join points — just returns r.
        const FnBody *Next = B->Next.get();
        if (B->E.K == Expr::Kind::FAp && !isRuntimeBuiltin(B->E.Callee) &&
            isReturnContinuation(Next, B->Var, Joins)) {
          Outcome O;
          O.IsTailCall = true;
          O.Fn = B->E.Callee;
          for (VarId A : B->E.Args)
            O.Args.push_back(Env[A]);
          return O;
        }
        Env[B->Var] = evalExpr(B->E, Env);
        B = Next;
        break;
      }
      case FnBody::Kind::JDecl:
        Joins[B->Join] = {&B->Params, B->JBody.get()};
        B = B->Next.get();
        break;
      case FnBody::Kind::Case: {
        const OVal &S = Env[B->Var];
        int64_t Tag;
        if (S->K == OValue::Kind::Int) {
          assert(S->I.fitsInt64() && "oracle: case on huge integer");
          Tag = S->I.getInt64();
        } else {
          assert(S->K == OValue::Kind::Ctor && "oracle: case on non-data");
          Tag = S->Tag;
        }
        const FnBody *Chosen = B->Default.get();
        for (const Alt &A : B->Alts) {
          if (A.Tag == Tag) {
            Chosen = A.Body.get();
            break;
          }
        }
        assert(Chosen && "oracle: non-exhaustive case");
        B = Chosen;
        break;
      }
      case FnBody::Kind::Ret: {
        Outcome O;
        O.V = Env[B->Var];
        return O;
      }
      case FnBody::Kind::Jmp: {
        auto It = Joins.find(B->Join);
        assert(It != Joins.end() && "oracle: jump to undeclared join");
        const JoinDef &J = It->second;
        assert(J.Params->size() == B->Args.size() &&
               "oracle: join arity mismatch");
        std::vector<OVal> Vals;
        Vals.reserve(B->Args.size());
        for (VarId A : B->Args)
          Vals.push_back(Env[A]);
        for (size_t I = 0; I != Vals.size(); ++I)
          Env[(*J.Params)[I]] = std::move(Vals[I]);
        B = J.Body;
        break;
      }
      case FnBody::Kind::Inc:
      case FnBody::Kind::Dec:
        B = B->Next.get(); // shared_ptr memory management
        break;
      case FnBody::Kind::Unreachable:
        assert(false && "oracle: reached unreachable");
        std::abort();
      }
    }
  }

  OVal evalExpr(const Expr &E, std::vector<OVal> &Env) {
    switch (E.K) {
    case Expr::Kind::Lit:
      return makeOInt(E.Tag);
    case Expr::Kind::BigLit:
      return makeOInt(E.Big);
    case Expr::Kind::Var:
      return Env[E.Args[0]];
    case Expr::Kind::Ctor: {
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Ctor;
      V->Tag = E.Tag;
      for (VarId A : E.Args)
        V->Fields.push_back(Env[A]);
      return V;
    }
    case Expr::Kind::Proj:
      return Env[E.Args[0]]->Fields.at(static_cast<size_t>(E.Tag));
    case Expr::Kind::PAp: {
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Closure;
      V->FnName = E.Callee;
      V->Tag = static_cast<int64_t>(P.lookup(E.Callee)->Params.size());
      for (VarId A : E.Args)
        V->Fields.push_back(Env[A]);
      return V;
    }
    case Expr::Kind::FAp: {
      std::vector<OVal> Args;
      for (VarId A : E.Args)
        Args.push_back(Env[A]);
      if (isRuntimeBuiltin(E.Callee))
        return callBuiltin(E.Callee, std::move(Args));
      return call(E.Callee, std::move(Args));
    }
    case Expr::Kind::VAp: {
      OVal Closure = Env[E.Args[0]];
      std::vector<OVal> Args;
      for (size_t I = 1; I != E.Args.size(); ++I)
        Args.push_back(Env[E.Args[I]]);
      return applyClosure(std::move(Closure), std::move(Args));
    }
    }
    std::abort();
  }

  OVal applyClosure(OVal Closure, std::vector<OVal> Args) {
    assert(Closure->K == OValue::Kind::Closure && "oracle: apply non-closure");
    size_t Arity = static_cast<size_t>(Closure->Tag);
    std::vector<OVal> All = Closure->Fields;
    All.insert(All.end(), Args.begin(), Args.end());
    if (All.size() < Arity) {
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Closure;
      V->FnName = Closure->FnName;
      V->Tag = Closure->Tag;
      V->Fields = std::move(All);
      return V;
    }
    std::vector<OVal> CallArgs(All.begin(), All.begin() + Arity);
    OVal Result = call(Closure->FnName, std::move(CallArgs));
    if (All.size() == Arity)
      return Result;
    std::vector<OVal> Rest(All.begin() + Arity, All.end());
    return applyClosure(std::move(Result), std::move(Rest));
  }

  OVal callBuiltin(const std::string &Name, std::vector<OVal> Args) {
    auto IntArg = [&](size_t I) -> const BigInt & {
      assert(Args[I]->K == OValue::Kind::Int && "oracle: non-int builtin arg");
      return Args[I]->I;
    };
    if (Name == "lean_nat_add" || Name == "lean_int_add")
      return makeOInt(IntArg(0) + IntArg(1));
    if (Name == "lean_int_sub")
      return makeOInt(IntArg(0) - IntArg(1));
    if (Name == "lean_nat_sub") {
      BigInt R = IntArg(0) - IntArg(1);
      return makeOInt(R.isNegative() ? BigInt(0) : R);
    }
    if (Name == "lean_nat_mul" || Name == "lean_int_mul")
      return makeOInt(IntArg(0) * IntArg(1));
    if (Name == "lean_nat_div" || Name == "lean_int_div")
      return makeOInt(IntArg(1).isZero() ? BigInt(0)
                                         : IntArg(0) / IntArg(1));
    if (Name == "lean_nat_mod" || Name == "lean_int_mod")
      return makeOInt(IntArg(1).isZero() ? IntArg(0)
                                         : IntArg(0) % IntArg(1));
    if (Name == "lean_int_neg")
      return makeOInt(-IntArg(0));
    if (Name == "lean_nat_dec_eq" || Name == "lean_int_dec_eq")
      return makeOInt(IntArg(0) == IntArg(1) ? 1 : 0);
    if (Name == "lean_nat_dec_lt" || Name == "lean_int_dec_lt")
      return makeOInt(IntArg(0) < IntArg(1) ? 1 : 0);
    if (Name == "lean_nat_dec_le" || Name == "lean_int_dec_le")
      return makeOInt(IntArg(0) <= IntArg(1) ? 1 : 0);
    if (Name == "lean_mk_array") {
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Array;
      assert(IntArg(0).fitsInt64() && "oracle: huge array");
      V->Fields.assign(static_cast<size_t>(IntArg(0).getInt64()), Args[1]);
      return V;
    }
    if (Name == "lean_array_get") {
      assert(Args[0]->K == OValue::Kind::Array && "oracle: not an array");
      return Args[0]->Fields.at(
          static_cast<size_t>(IntArg(1).getInt64()));
    }
    if (Name == "lean_array_set") {
      assert(Args[0]->K == OValue::Kind::Array && "oracle: not an array");
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Array;
      V->Fields = Args[0]->Fields;
      V->Fields.at(static_cast<size_t>(IntArg(1).getInt64())) = Args[2];
      return V;
    }
    if (Name == "lean_array_push") {
      assert(Args[0]->K == OValue::Kind::Array && "oracle: not an array");
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Array;
      V->Fields = Args[0]->Fields;
      V->Fields.push_back(Args[1]);
      return V;
    }
    if (Name == "lean_array_size") {
      assert(Args[0]->K == OValue::Kind::Array && "oracle: not an array");
      return makeOInt(static_cast<int64_t>(Args[0]->Fields.size()));
    }
    if (Name == "lean_io_println") {
      Output += displayOValue(Args[0]);
      Output += '\n';
      return makeOInt(0);
    }
    if (Name == "lean_string_append") {
      auto V = std::make_shared<OValue>();
      V->K = OValue::Kind::Str;
      V->S = Args[0]->S + Args[1]->S;
      return V;
    }
    if (Name == "lean_string_length")
      return makeOInt(static_cast<int64_t>(Args[0]->S.size()));
    assert(false && "oracle: unknown builtin");
    std::abort();
  }

  const Program &P;
  std::string &Output;
};

} // namespace

OVal lambda::interpret(const Program &P, const std::string &Name,
                       std::vector<OVal> Args, std::string &Output) {
  Interpreter I(P, Output);
  return I.call(Name, std::move(Args));
}
