//===- LambdaIR.cpp - the λpure / λrc functional IR ---------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lambda/LambdaIR.h"

#include "vm/Builtins.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace lz;
using namespace lz::lambda;

FnBodyPtr lambda::makeLet(VarId X, Expr E, FnBodyPtr Next) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Let;
  B->Var = X;
  B->E = std::move(E);
  B->Next = std::move(Next);
  return B;
}

FnBodyPtr lambda::makeJDecl(JoinId J, std::vector<VarId> Params,
                            FnBodyPtr JBody, FnBodyPtr Next) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::JDecl;
  B->Join = J;
  B->Params = std::move(Params);
  B->JBody = std::move(JBody);
  B->Next = std::move(Next);
  return B;
}

FnBodyPtr lambda::makeCase(VarId X, std::vector<Alt> Alts, FnBodyPtr Default) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Case;
  B->Var = X;
  B->Alts = std::move(Alts);
  B->Default = std::move(Default);
  return B;
}

FnBodyPtr lambda::makeRet(VarId X) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Ret;
  B->Var = X;
  return B;
}

FnBodyPtr lambda::makeJmp(JoinId J, std::vector<VarId> Args) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Jmp;
  B->Join = J;
  B->Args = std::move(Args);
  return B;
}

FnBodyPtr lambda::makeInc(VarId X, FnBodyPtr Next) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Inc;
  B->Var = X;
  B->Next = std::move(Next);
  return B;
}

FnBodyPtr lambda::makeDec(VarId X, FnBodyPtr Next) {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Dec;
  B->Var = X;
  B->Next = std::move(Next);
  return B;
}

FnBodyPtr lambda::makeUnreachable() {
  auto B = std::make_unique<FnBody>();
  B->K = FnBody::Kind::Unreachable;
  return B;
}

FnBodyPtr lambda::cloneBody(const FnBody &B) {
  auto R = std::make_unique<FnBody>();
  R->K = B.K;
  R->Var = B.Var;
  R->E = B.E;
  R->Join = B.Join;
  R->Params = B.Params;
  R->Args = B.Args;
  if (B.JBody)
    R->JBody = cloneBody(*B.JBody);
  if (B.Next)
    R->Next = cloneBody(*B.Next);
  if (B.Default)
    R->Default = cloneBody(*B.Default);
  for (const Alt &A : B.Alts) {
    Alt NA;
    NA.Tag = A.Tag;
    NA.Body = cloneBody(*A.Body);
    R->Alts.push_back(std::move(NA));
  }
  return R;
}

namespace {

/// Alpha-equivalence state: bound variables/joins of A map onto B's; free
/// variables must be the very same ids (and must not collide with B-side
/// binders, to keep the relation injective).
struct AlphaState {
  // Pure membership/lookup tables — never iterated, so hashing is safe.
  std::unordered_map<VarId, VarId> VarMap;
  std::unordered_map<JoinId, JoinId> JoinMap;
  std::unordered_set<VarId> BoundInB;
  std::unordered_set<JoinId> JoinBoundInB;

  void bindVar(VarId A, VarId B) {
    VarMap[A] = B;
    BoundInB.insert(B);
  }
  bool useVar(VarId A, VarId B) const {
    auto It = VarMap.find(A);
    if (It != VarMap.end())
      return It->second == B;
    return A == B && !BoundInB.count(B);
  }
  void bindJoin(JoinId A, JoinId B) {
    JoinMap[A] = B;
    JoinBoundInB.insert(B);
  }
  bool useJoin(JoinId A, JoinId B) const {
    auto It = JoinMap.find(A);
    if (It != JoinMap.end())
      return It->second == B;
    return A == B && !JoinBoundInB.count(B);
  }
};

bool exprsEqualAlpha(const Expr &A, const Expr &B, const AlphaState &S) {
  if (A.K != B.K || A.Tag != B.Tag || A.Big != B.Big ||
      A.Callee != B.Callee || A.Args.size() != B.Args.size())
    return false;
  for (size_t I = 0; I != A.Args.size(); ++I)
    if (!S.useVar(A.Args[I], B.Args[I]))
      return false;
  return true;
}

bool bodiesEqualAlpha(const FnBody &A, const FnBody &B, AlphaState &S) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case FnBody::Kind::Let: {
    if (!exprsEqualAlpha(A.E, B.E, S))
      return false;
    S.bindVar(A.Var, B.Var);
    return bodiesEqualAlpha(*A.Next, *B.Next, S);
  }
  case FnBody::Kind::JDecl: {
    if (A.Params.size() != B.Params.size())
      return false;
    S.bindJoin(A.Join, B.Join);
    for (size_t I = 0; I != A.Params.size(); ++I)
      S.bindVar(A.Params[I], B.Params[I]);
    return bodiesEqualAlpha(*A.JBody, *B.JBody, S) &&
           bodiesEqualAlpha(*A.Next, *B.Next, S);
  }
  case FnBody::Kind::Case: {
    if (!S.useVar(A.Var, B.Var) || A.Alts.size() != B.Alts.size())
      return false;
    if (static_cast<bool>(A.Default) != static_cast<bool>(B.Default))
      return false;
    for (size_t I = 0; I != A.Alts.size(); ++I) {
      if (A.Alts[I].Tag != B.Alts[I].Tag ||
          !bodiesEqualAlpha(*A.Alts[I].Body, *B.Alts[I].Body, S))
        return false;
    }
    return !A.Default || bodiesEqualAlpha(*A.Default, *B.Default, S);
  }
  case FnBody::Kind::Ret:
    return S.useVar(A.Var, B.Var);
  case FnBody::Kind::Jmp: {
    if (!S.useJoin(A.Join, B.Join) || A.Args.size() != B.Args.size())
      return false;
    for (size_t I = 0; I != A.Args.size(); ++I)
      if (!S.useVar(A.Args[I], B.Args[I]))
        return false;
    return true;
  }
  case FnBody::Kind::Inc:
  case FnBody::Kind::Dec:
    return S.useVar(A.Var, B.Var) &&
           bodiesEqualAlpha(*A.Next, *B.Next, S);
  case FnBody::Kind::Unreachable:
    return true;
  }
  return false;
}

} // namespace

bool lambda::bodiesEqual(const FnBody &A, const FnBody &B) {
  AlphaState S;
  return bodiesEqualAlpha(A, B, S);
}

Program lambda::cloneProgram(const Program &P) {
  Program R;
  for (const Function &F : P.Functions) {
    Function NF;
    NF.Name = F.Name;
    NF.Params = F.Params;
    NF.NumVars = F.NumVars;
    NF.NumJoins = F.NumJoins;
    NF.Body = cloneBody(*F.Body);
    R.add(std::move(NF));
  }
  return R;
}

bool lambda::isRuntimeBuiltin(const std::string &Name) {
  return vm::lookupBuiltin(Name) >= 0;
}

unsigned lambda::runtimeBuiltinArity(const std::string &Name) {
  int Index = vm::lookupBuiltin(Name);
  assert(Index >= 0 && "not a builtin");
  return vm::getBuiltinArity(Index);
}

//===----------------------------------------------------------------------===//
// Debug printing
//===----------------------------------------------------------------------===//

namespace {

void printExpr(const Expr &E, std::string &Out) {
  switch (E.K) {
  case Expr::Kind::Ctor:
    Out += "ctor_" + std::to_string(E.Tag) + "(";
    break;
  case Expr::Kind::Proj:
    Out += "proj_" + std::to_string(E.Tag) + "(";
    break;
  case Expr::Kind::PAp:
    Out += "pap " + E.Callee + "(";
    break;
  case Expr::Kind::FAp:
    Out += "fap " + E.Callee + "(";
    break;
  case Expr::Kind::VAp:
    Out += "vap(";
    break;
  case Expr::Kind::Lit:
    Out += "lit " + std::to_string(E.Tag);
    return;
  case Expr::Kind::BigLit:
    Out += "biglit " + E.Big.toString();
    return;
  case Expr::Kind::Var:
    Out += "var x" + std::to_string(E.Args[0]);
    return;
  }
  for (size_t I = 0; I != E.Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "x" + std::to_string(E.Args[I]);
  }
  Out += ")";
}

void printBody(const FnBody &B, unsigned Indent, std::string &Out) {
  Out.append(Indent, ' ');
  switch (B.K) {
  case FnBody::Kind::Let:
    Out += "let x" + std::to_string(B.Var) + " = ";
    printExpr(B.E, Out);
    Out += ";\n";
    printBody(*B.Next, Indent, Out);
    return;
  case FnBody::Kind::JDecl: {
    Out += "jdecl j" + std::to_string(B.Join) + "(";
    for (size_t I = 0; I != B.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "x" + std::to_string(B.Params[I]);
    }
    Out += ") {\n";
    printBody(*B.JBody, Indent + 2, Out);
    Out.append(Indent, ' ');
    Out += "};\n";
    printBody(*B.Next, Indent, Out);
    return;
  }
  case FnBody::Kind::Case:
    Out += "case x" + std::to_string(B.Var) + " of\n";
    for (const Alt &A : B.Alts) {
      Out.append(Indent, ' ');
      Out += "| " + std::to_string(A.Tag) + " =>\n";
      printBody(*A.Body, Indent + 2, Out);
    }
    if (B.Default) {
      Out.append(Indent, ' ');
      Out += "| default =>\n";
      printBody(*B.Default, Indent + 2, Out);
    }
    return;
  case FnBody::Kind::Ret:
    Out += "ret x" + std::to_string(B.Var) + "\n";
    return;
  case FnBody::Kind::Jmp:
    Out += "jmp j" + std::to_string(B.Join) + "(";
    for (size_t I = 0; I != B.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "x" + std::to_string(B.Args[I]);
    }
    Out += ")\n";
    return;
  case FnBody::Kind::Inc:
    Out += "inc x" + std::to_string(B.Var) + ";\n";
    printBody(*B.Next, Indent, Out);
    return;
  case FnBody::Kind::Dec:
    Out += "dec x" + std::to_string(B.Var) + ";\n";
    printBody(*B.Next, Indent, Out);
    return;
  case FnBody::Kind::Unreachable:
    Out += "unreachable\n";
    return;
  }
}

} // namespace

std::string lambda::bodyToString(const FnBody &B) {
  std::string Out;
  printBody(B, 0, Out);
  return Out;
}
