//===- LambdaIR.h - the λpure / λrc functional IR ---------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LEAN4's λpure intermediate representation (Section II-B): a minimal,
/// pure, strict, ANF-style functional IR with data constructors, pattern
/// matching (Case on constructor tags), full and partial applications, and
/// join points. λrc is the same IR extended with explicit `Inc`/`Dec`
/// reference-count statements — produced by the pass in src/rc.
///
/// Values are variables (dense per-function VarIds). A function body is a
/// tree of statements:
///
///   b ::= let x = e; b | jdecl j (params) { b }; b | case x of alts
///       | ret x | jmp j (args) | inc x; b | dec x; b | unreachable
///   e ::= ctor_tag(ys) | proj_i(y) | pap f (ys) | fap f (ys)
///       | vap y (ys) | lit n | biglit | var y
///
//===----------------------------------------------------------------------===//

#ifndef LZ_LAMBDA_LAMBDAIR_H
#define LZ_LAMBDA_LAMBDAIR_H

#include "support/BigInt.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lz::lambda {

using VarId = uint32_t;
using JoinId = uint32_t;

/// A pure right-hand side of a let binding.
struct Expr {
  enum class Kind : uint8_t {
    Ctor,   ///< construct tag Tag with fields Args (always >= 1 field;
            ///< nullary constructors are erased to Lit(tag))
    Proj,   ///< field #Tag of Args[0] (borrowed in λrc terms)
    PAp,    ///< partial application of function Callee to Args
    FAp,    ///< full (saturated) application of Callee to Args; Callee may
            ///< be a user function or a lean_* runtime builtin
    VAp,    ///< apply closure Args[0] to Args[1..] (papextend)
    Lit,    ///< small integer literal Tag
    BigLit, ///< arbitrary precision literal Big
    Var,    ///< alias of Args[0]
  };

  Kind K;
  int64_t Tag = 0;    ///< ctor tag / projection index / literal value
  BigInt Big;         ///< BigLit payload
  std::string Callee; ///< PAp/FAp target
  std::vector<VarId> Args;
};

struct FnBody;
using FnBodyPtr = std::unique_ptr<FnBody>;

/// One arm of a Case; matches constructor tag / scalar value `Tag`.
struct Alt {
  int64_t Tag = 0;
  FnBodyPtr Body;
};

struct FnBody {
  enum class Kind : uint8_t {
    Let,         ///< let Var = E; Next
    JDecl,       ///< jdecl Join (Params) { JBody }; Next
    Case,        ///< case Var of Alts (| Default)
    Ret,         ///< ret Var
    Jmp,         ///< jmp Join (Args)
    Inc,         ///< inc Var; Next       (λrc only)
    Dec,         ///< dec Var; Next       (λrc only)
    Unreachable, ///< non-exhaustive match fell through
  };

  Kind K;
  VarId Var = 0;
  Expr E;
  JoinId Join = 0;
  std::vector<VarId> Params;
  FnBodyPtr JBody;
  FnBodyPtr Next;
  std::vector<Alt> Alts;
  FnBodyPtr Default; ///< may be null when Alts are exhaustive
  std::vector<VarId> Args;
};

/// Helpers for building FnBody nodes.
FnBodyPtr makeLet(VarId X, Expr E, FnBodyPtr Next);
FnBodyPtr makeJDecl(JoinId J, std::vector<VarId> Params, FnBodyPtr JBody,
                    FnBodyPtr Next);
FnBodyPtr makeCase(VarId X, std::vector<Alt> Alts, FnBodyPtr Default);
FnBodyPtr makeRet(VarId X);
FnBodyPtr makeJmp(JoinId J, std::vector<VarId> Args);
FnBodyPtr makeInc(VarId X, FnBodyPtr Next);
FnBodyPtr makeDec(VarId X, FnBodyPtr Next);
FnBodyPtr makeUnreachable();

/// Deep copy.
FnBodyPtr cloneBody(const FnBody &B);

/// Structural equality (exact, including variable ids) — used by the
/// λpure simplifier's common-branch elimination.
bool bodiesEqual(const FnBody &A, const FnBody &B);

/// A λpure function.
struct Function {
  std::string Name;
  std::vector<VarId> Params; ///< always 0..N-1
  FnBodyPtr Body;
  uint32_t NumVars = 0;  ///< dense VarId bound
  uint32_t NumJoins = 0; ///< dense JoinId bound
};

/// A whole program.
struct Program {
  std::vector<Function> Functions;
  /// Name -> index lookup (never iterated; Functions keeps program order).
  std::unordered_map<std::string, size_t> FunctionIndex;

  Function *lookup(const std::string &Name) {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
  }
  const Function *lookup(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
  }
  void add(Function F) {
    FunctionIndex[F.Name] = Functions.size();
    Functions.push_back(std::move(F));
  }
};

/// Deep copy of a program (pipelines mutate their own copy).
Program cloneProgram(const Program &P);

/// Debug rendering of a function body.
std::string bodyToString(const FnBody &B);

/// True for lean_* runtime builtins; their arity is in builtinArity.
bool isRuntimeBuiltin(const std::string &Name);
unsigned runtimeBuiltinArity(const std::string &Name);

} // namespace lz::lambda

#endif // LZ_LAMBDA_LAMBDAIR_H
