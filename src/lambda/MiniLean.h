//===- MiniLean.h - a small strict functional surface language --*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniLean substitutes for the LEAN4 frontend (DESIGN.md): a strict,
/// type-erased functional language with algebraic data types, nested
/// pattern matching, let bindings, partial application and arbitrary
/// precision integers, compiled to λpure ANF. The match compiler is
/// matrix-based (Maranget style) and binds every right-hand side to a join
/// point, reproducing the deduplication structure of the paper's Figure 5.
///
/// Syntax sketch:
///
///   inductive List := | Nil | Cons h t
///
///   def length xs :=
///     match xs with
///     | Nil => 0
///     | Cons h t => 1 + length t
///     end
///
///   def main := println (length (Cons 1 (Cons 2 Nil)))
///
/// Operators: + * / % (Nat-style, overflow to bignum), - (integer),
/// == != < <= > >= (decidable comparisons producing 0/1 scalars),
/// if/then/else, multi-scrutinee match `match a, b with | p, q => ...`,
/// and anonymous functions `fun x y => e` (lambda-lifted to fresh
/// top-level definitions over their captured locals, as LEAN's frontend
/// does before λrc — Figure 7 of the paper).
/// Builtins: println, arrayMk, arrayGet, arraySet, arrayPush, arraySize,
/// natSub, natDiv, natMod, intNeg.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_LAMBDA_MINILEAN_H
#define LZ_LAMBDA_MINILEAN_H

#include "lambda/LambdaIR.h"
#include "support/Diagnostics.h"
#include "support/LogicalResult.h"

#include <string>
#include <string_view>

namespace lz::lambda {

/// Frontend hardening knobs for untrusted input.
struct ParseOptions {
  /// Cap on expression/pattern nesting (and operator-chain length, which
  /// builds equally deep trees). Crossing it produces a clean "nesting too
  /// deep" diagnostic instead of overflowing the stack in the parser,
  /// elaborator or AST destructors.
  unsigned MaxNestingDepth = 1000;
};

/// Parses and elaborates \p Source into \p Out, reporting (possibly many)
/// diagnostics into \p DE: the parser recovers at `def`/`inductive`
/// boundaries and expression sync tokens instead of stopping at the first
/// error. Returns failure iff any error diagnostic was emitted; \p Out is
/// only meaningful on success.
LogicalResult parseMiniLean(std::string_view Source, Program &Out,
                            DiagnosticEngine &DE,
                            const ParseOptions &Opts = {});

/// Legacy single-error API: on failure \p ErrorMessage holds the first
/// error as "line L, col C: message".
LogicalResult parseMiniLean(std::string_view Source, Program &Out,
                            std::string &ErrorMessage);

} // namespace lz::lambda

#endif // LZ_LAMBDA_MINILEAN_H
