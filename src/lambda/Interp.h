//===- Interp.h - reference interpreter for λpure ---------------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct, slow, obviously-correct interpreter for λpure used as the
/// semantic oracle in differential testing (the substitute for LEAN's
/// 648-test suite, see DESIGN.md). It shares nothing with the compilation
/// pipeline: values are shared_ptr graphs, all integers are BigInts, and
/// Inc/Dec statements are ignored (memory is GC'd by shared_ptr).
///
//===----------------------------------------------------------------------===//

#ifndef LZ_LAMBDA_INTERP_H
#define LZ_LAMBDA_INTERP_H

#include "lambda/LambdaIR.h"

#include <memory>
#include <string>
#include <vector>

namespace lz::lambda {

/// An oracle value.
struct OValue;
using OVal = std::shared_ptr<OValue>;

struct OValue {
  enum class Kind { Int, Ctor, Closure, Array, Str };
  Kind K = Kind::Int;
  BigInt I;
  int64_t Tag = 0;
  std::vector<OVal> Fields; ///< ctor fields / closure fixed args / array
  std::string FnName;       ///< closure target
  std::string S;
};

OVal makeOInt(const BigInt &Value);
OVal makeOInt(int64_t Value);

/// Renders a value in exactly the format Runtime::toDisplayString uses, so
/// oracle and VM outputs are string-comparable.
std::string displayOValue(const OVal &V);

/// Runs \p Program's function \p Name on \p Args. \p Output collects
/// lean_io_println lines. Aborts on stuck programs (interprets only
/// well-formed λpure).
OVal interpret(const Program &P, const std::string &Name,
               std::vector<OVal> Args, std::string &Output);

} // namespace lz::lambda

#endif // LZ_LAMBDA_INTERP_H
