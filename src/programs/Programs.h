//===- Programs.h - the LEAN benchmark suite in MiniLean --------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniLean ports of the LEAN benchmark suite used in the paper's
/// evaluation (Section V-B): binarytrees, binarytrees-int, const_fold,
/// deriv, filter, qsort, rbmap_checkpoint, unionfind. Each program is a
/// template with one size parameter; tests run them at small sizes against
/// the oracle, benchmarks at large sizes for timing.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_PROGRAMS_PROGRAMS_H
#define LZ_PROGRAMS_PROGRAMS_H

#include <string>
#include <vector>

namespace lz::programs {

struct BenchProgram {
  const char *Name;
  /// MiniLean source with a single `@N@` placeholder for the size.
  const char *SourceTemplate;
  /// Size used by the timing harness.
  long BenchSize;
  /// Size used by correctness tests (small enough for the oracle).
  long TestSize;
};

/// All eight benchmark programs, in the order of the paper's figures.
const std::vector<BenchProgram> &getBenchmarkSuite();

/// Higher-order workloads added for the closure-optimization subsystem:
/// a CPS-style pipeline, church-numeral arithmetic with curried adders,
/// and compose/fold chains of partial applications. Run by
/// bench/closure_opt (devirt-on vs devirt-off) and, at TestSize, by the
/// differential suite.
const std::vector<BenchProgram> &getHigherOrderSuite();

/// Looks up one by name in the benchmark or higher-order suite; asserts on
/// unknown names.
const BenchProgram &getBenchmark(const std::string &Name);

/// Instantiates the source template with the given size.
std::string instantiate(const BenchProgram &P, long Size);

/// A feature-coverage program: fixed source, no size parameter.
struct FeatureProgram {
  const char *Name;
  const char *Source;
};

/// Small programs each stressing one language/runtime feature, used by the
/// differential correctness suites (bench/tab_correctness and
/// tests/e2e/DifferentialTest) beyond the benchmark programs.
const std::vector<FeatureProgram> &getFeatureCorpus();

} // namespace lz::programs

#endif // LZ_PROGRAMS_PROGRAMS_H
