//===- Generator.h - random well-typed MiniLean programs --------*- C++ -*-===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grammar-directed random program generation for differential fuzzing,
/// shared by tests/e2e/FuzzDifferentialTest and the lz-fuzz driver. Every
/// generated program is well-typed (all expressions are integer-valued;
/// data structures flow only into match scrutinees and prelude helpers)
/// and terminates by construction: a generated function may only call
/// functions defined before it, and the only recursion lives in a fixed,
/// structurally terminating prelude.
///
/// Coverage: arithmetic/comparison chains, conditionals, let bindings,
/// bignum-forcing literals, staged integer matches, nested constructor
/// patterns over the prelude list, user inductives with scalar fields,
/// lambdas (captured locals, compose chains, let-bound closures), and
/// partial applications both through the prelude combinators and through
/// under-saturated calls of generated functions.
///
//===----------------------------------------------------------------------===//

#ifndef LZ_PROGRAMS_GENERATOR_H
#define LZ_PROGRAMS_GENERATOR_H

#include <random>
#include <string>
#include <vector>

namespace lz::programs {

struct GeneratorOptions {
  /// Generated (non-prelude, non-main) function count is in
  /// [MinFunctions, MaxFunctions].
  unsigned MinFunctions = 2;
  unsigned MaxFunctions = 5;
  /// Expression tree depth for function bodies / main.
  unsigned BodyDepth = 3;
  unsigned MainDepth = 4;
  /// Also declare 0-2 random inductive types with scalar fields and
  /// exercise them with construct-then-match expressions.
  bool ExtraInductives = true;
};

/// Deterministic per-seed generator: the same (seed, options) pair always
/// produces the same program, so failing seeds reported by lz-fuzz are
/// re-runnable.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed, GeneratorOptions Opts = {});

  /// Returns a complete MiniLean program defining `main`.
  std::string generate();

private:
  struct FuncInfo {
    std::string Name;
    unsigned Arity;
  };
  struct CtorInfo {
    std::string Name;
    unsigned Arity;
  };
  struct InductiveInfo {
    std::string Name;
    std::vector<CtorInfo> Ctors;
  };

  unsigned pick(unsigned N) { return Rng() % N; }

  std::string genInductives();
  std::string genLiteral();
  std::string genVar();
  std::string genSmall();
  std::string genLambda(unsigned Depth);
  std::string genAdtMatch(unsigned Depth);
  std::string genExpr(unsigned Depth);

  std::mt19937 Rng;
  GeneratorOptions Opts;
  std::vector<FuncInfo> Funcs;
  std::vector<InductiveInfo> Inductives;
  std::vector<std::string> Vars;
  unsigned CallableCount = 0;
  unsigned NextLocal = 0;
};

} // namespace lz::programs

#endif // LZ_PROGRAMS_GENERATOR_H
