//===- Programs.cpp - the LEAN benchmark suite in MiniLean --------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

#include <cassert>

using namespace lz;
using namespace lz::programs;

namespace {

// binarytrees — "a purely functional binary tree lookup, insert, and
// delete benchmark" (CLBG style): repeatedly build complete trees and sum
// their checksums. Exercises constructor allocation/deallocation churn.
const char *BinaryTrees = R"(
inductive Tree := | Leaf | Node l r

def mkTree d :=
  if d == 0 then Leaf
  else Node (mkTree (d - 1)) (mkTree (d - 1))

def check t := match t with
  | Leaf => 1
  | Node l r => 1 + check l + check r
end

def iter i d acc :=
  if i == 0 then acc
  else iter (i - 1) d (acc + check (mkTree d))

def main := iter 40 @N@ 0
)";

// binarytrees-int — nodes carry integers; checksum sums payloads.
const char *BinaryTreesInt = R"(
inductive Tree := | Leaf | Node v l r

def mkTree n d :=
  if d == 0 then Leaf
  else Node n (mkTree (2 * n) (d - 1)) (mkTree (2 * n + 1) (d - 1))

def sumTree t := match t with
  | Leaf => 0
  | Node v l r => v + sumTree l + sumTree r
end

def iter i d acc :=
  if i == 0 then acc
  else iter (i - 1) d (acc + sumTree (mkTree i d))

def main := iter 40 @N@ 0
)";

// const_fold — constant folding over an expression AST: the nested-match
// workload the paper's case/common-branch optimizations target.
const char *ConstFold = R"(
inductive Expr := | Num n | Var | Add a b | Mul a b

def mkExpr d v :=
  if d == 0 then (if v % 3 == 0 then Var else Num v)
  else Add (Mul (mkExpr (d - 1) (v + 1)) (Num 2))
           (mkExpr (d - 1) (v + 2))

def fold e := match e with
  | Num n => Num n
  | Var => Var
  | Add a b =>
    let fa := fold a;
    let fb := fold b;
    (match fa, fb with
     | Num x, Num y => Num (x + y)
     | _, _ => Add fa fb
    end)
  | Mul a b =>
    let fa := fold a;
    let fb := fold b;
    (match fa, fb with
     | Num x, Num y => Num (x * y)
     | _, _ => Mul fa fb
    end)
end

def size e := match e with
  | Num n => 1
  | Var => 1
  | Add a b => 1 + size a + size b
  | Mul a b => 1 + size a + size b
end

def iter i acc :=
  if i == 0 then acc
  else iter (i - 1) (acc + size (fold (mkExpr @N@ i)))

def main := iter 10 0
)";

// deriv — symbolic differentiation of expression trees.
const char *Deriv = R"(
inductive Expr := | Num n | X | Add a b | Mul a b

def deriv e := match e with
  | Num n => Num 0
  | X => Num 1
  | Add a b => Add (deriv a) (deriv b)
  | Mul a b => Add (Mul (deriv a) b) (Mul a (deriv b))
end

def mkExpr d :=
  if d == 0 then X
  else Mul (mkExpr (d - 1)) (Add X (Num d))

def size e := match e with
  | Num n => 1
  | X => 1
  | Add a b => 1 + size a + size b
  | Mul a b => 1 + size a + size b
end

def main := size (deriv (deriv (deriv (mkExpr @N@))))
)";

// filter — predicate filtering over a linked list; higher-order: the
// predicate travels as a closure.
const char *Filter = R"(
inductive List := | Nil | Cons h t

def range n := if n == 0 then Nil else Cons n (range (n - 1))

def filter p xs := match xs with
  | Nil => Nil
  | Cons h t => if p h then Cons h (filter p t) else filter p t
end

def sum xs := match xs with
  | Nil => 0
  | Cons h t => h + sum t
end

def isEven x := x % 2 == 0
def divisibleBy k x := x % k == 0

def main :=
  let xs := range @N@;
  sum (filter isEven xs) + sum (filter (divisibleBy 3) xs)
)";

// qsort — "real in-place quicksort using LEAN's arrays": the RC==1
// destructive array update path.
const char *Qsort = R"(
inductive Pair := | MkPair a b

def fill a i n s :=
  if i == n then a
  else fill (arrayPush a (s % 10007)) (i + 1) n ((s * 1103515245 + 12345) % 2147483648)

def swap a i j :=
  let x := arrayGet a i;
  let y := arrayGet a j;
  arraySet (arraySet a i y) j x

def partLoop a i j hi pivot :=
  if j == hi then MkPair (swap a i hi) i
  else if arrayGet a j < pivot
       then partLoop (swap a i j) (i + 1) (j + 1) hi pivot
       else partLoop a i (j + 1) hi pivot

def qsortGo a lo hi :=
  if hi <= lo then a
  else match partLoop a lo lo hi (arrayGet a hi) with
       | MkPair a2 p =>
         qsortGo (qsortGo a2 lo (if p == 0 then 0 else p - 1)) (p + 1) hi
end

def checksum a i n acc :=
  if i == n then acc
  else checksum a (i + 1) n ((acc * 31 + arrayGet a i) % 1000000007)

def main :=
  let a := fill (arrayMk 0 0) 0 @N@ 42;
  let sorted := qsortGo a 0 (@N@ - 1);
  checksum sorted 0 @N@ 0
)";

// rbmap_checkpoint — Okasaki-style red-black tree insertion with periodic
// lookup checkpoints; deeply nested patterns stress the match compiler's
// join points.
const char *RBMap = R"(
inductive Color := | Red | Black
inductive Tree := | Leaf | Node c l k v r

def balance c l k v r := match c, l, r with
  | Black, Node Red (Node Red a kx vx b) ky vy c2, r2 =>
      Node Red (Node Black a kx vx b) ky vy (Node Black c2 k v r2)
  | Black, Node Red a kx vx (Node Red b ky vy c2), r2 =>
      Node Red (Node Black a kx vx b) ky vy (Node Black c2 k v r2)
  | Black, l2, Node Red (Node Red b ky vy c2) kz vz d =>
      Node Red (Node Black l2 k v b) ky vy (Node Black c2 kz vz d)
  | Black, l2, Node Red b ky vy (Node Red c2 kz vz d) =>
      Node Red (Node Black l2 k v b) ky vy (Node Black c2 kz vz d)
  | c3, l2, r2 => Node c3 l2 k v r2
end

def ins t k v := match t with
  | Leaf => Node Red Leaf k v Leaf
  | Node c2 l kx vx r =>
    if k < kx then balance c2 (ins l k v) kx vx r
    else if kx < k then balance c2 l kx vx (ins r k v)
    else Node c2 l k v r
end

def blacken t := match t with
  | Node _ l k v r => Node Black l k v r
  | t2 => t2
end

def insert t k v := blacken (ins t k v)

def lookup t k := match t with
  | Leaf => 0
  | Node _ l kx vx r =>
    if k < kx then lookup l k
    else if kx < k then lookup r k
    else vx
end

def build t i n s :=
  if i == n then t
  else build (insert t (s % 65536) i) (i + 1) n ((s * 1103515245 + 12345) % 2147483648)

def probe t i acc :=
  if i == 0 then acc
  else probe t (i - 1) (acc + lookup t (i * 7 % 65536))

def main :=
  let t := build Leaf 0 @N@ 42;
  probe t 1000 0
)";

// unionfind — Tarjan's union-find over arrays (find with halving-free
// simple chase; union by overwrite), as in the LEAN suite's version.
const char *UnionFind = R"(
def initArr a i n :=
  if i == n then a
  else initArr (arrayPush a i) (i + 1) n

def find uf i :=
  let p := arrayGet uf i;
  if p == i then i else find uf p

def union uf a b :=
  let ra := find uf a;
  let rb := find uf b;
  if ra == rb then uf else arraySet uf ra rb

def loop uf i n s :=
  if i == n then uf
  else
    let x := s % n;
    let y := (s / 7 + i) % n;
    loop (union uf x y) (i + 1) n ((s * 1103515245 + 12345) % 2147483648)

def countRoots uf i n acc :=
  if i == n then acc
  else countRoots uf (i + 1) n (acc + (if find uf i == i then 1 else 0))

def main :=
  let uf := initArr (arrayMk 0 0) 0 @N@;
  let uf2 := loop uf 0 @N@ 42;
  countRoots uf2 0 @N@ 0
)";

// cps_pipeline — continuation-passing computation where the continuation
// stack is built from partial applications of *known* functions: the
// outermost link saturates locally (devirtualization prey), the inner
// continuations escape into closures (generic apply path stays exercised).
const char *CpsPipeline = R"(
def done x := x
def add1 k x := k (x + 1)
def mul2 k x := k (x * 2)
def sub3 k x := k (x - 3)

def runPipe x :=
  let k := add1 (mul2 (sub3 done));
  k x

def loop i n acc :=
  if i == n then acc
  else
    let v := runPipe (acc + i);
    loop (i + 1) n (v % 1048576)

def main := loop 0 @N@ 1
)";

// church_arith — church numerals (the classic curried workload): numeral
// application rides the generic apply path, while the curried adder
// `mkAdd` returns an under-applied closure, so every `mkAdd i acc`
// over-application is arity-raising prey.
const char *ChurchArith = R"(
def inc x := x + 1
def addK k x := x + k
def mkAdd a := addK a

def two s z := s (s z)
def three s z := s (s (s z))
def addc m n s z := m s (n s z)
def mulc m n s z := m (n s) z

def churchVal m := m inc 0
def church i := churchVal (addc two three) + churchVal (mulc two three)

def loopAdd i acc := if i == 0 then acc else loopAdd (i - 1) (mkAdd i acc)
def iterC i acc := if i == 0 then acc else iterC (i - 1) (acc + church i)

def main := loopAdd @N@ 0 + iterC @N@ 0
)";

// compose_chains — compose/fold chains: a let-bound partial application
// saturated two steps later (a pap + two papextends collapsing to one
// direct call under devirtualization) inside a hot fold, plus an escaping
// composed closure driving the generic path.
const char *ComposeChains = R"(
def add3 a b c := a + b + c
def addK k x := x + k
def compose f g x := f (g x)

def step acc i :=
  let t := add3 acc;
  let u := t i;
  u 1

def iterate f n x := if n == 0 then x else iterate f (n - 1) (f x)

def stepLoop i n acc :=
  if i == n then acc
  else stepLoop (i + 1) n (step acc i)

def main :=
  let h := compose (addK 1) (addK 2);
  let a := iterate h 200 0;
  stepLoop 0 @N@ a
)";

std::vector<BenchProgram> makeSuite() {
  return {
      {"binarytrees", BinaryTrees, /*BenchSize=*/12, /*TestSize=*/5},
      {"binarytrees-int", BinaryTreesInt, 12, 5},
      {"const_fold", ConstFold, 13, 5},
      {"deriv", Deriv, 10, 4},
      {"filter", Filter, 30000, 200},
      {"qsort", Qsort, 10000, 150},
      {"rbmap_checkpoint", RBMap, 30000, 300},
      {"unionfind", UnionFind, 6000, 300},
  };
}

} // namespace

const std::vector<BenchProgram> &lz::programs::getBenchmarkSuite() {
  static std::vector<BenchProgram> Suite = makeSuite();
  return Suite;
}

const std::vector<BenchProgram> &lz::programs::getHigherOrderSuite() {
  static std::vector<BenchProgram> Suite = {
      {"cps_pipeline", CpsPipeline, /*BenchSize=*/60000, /*TestSize=*/200},
      {"church_arith", ChurchArith, 20000, 100},
      {"compose_chains", ComposeChains, 60000, 200},
  };
  return Suite;
}

const std::vector<FeatureProgram> &lz::programs::getFeatureCorpus() {
  static std::vector<FeatureProgram> Corpus = {
      {"const", "def main := 42"},
      {"let_binding", "def main := let x := 7; x * x"},
      {"multi_arg", "def f x y z := x + y * z\ndef main := f 1 2 3"},
      {"if_cmp", "def main := if 1 <= 2 then 10 else 20"},
      {"pow_bigint",
       "def pow b n := if n == 0 then 1 else b * pow b (n - 1)\n"
       "def main := pow 3 40"},
      {"pair_projections",
       "inductive P := | MkP a b\n"
       "def fst p := match p with | MkP a _ => a end\n"
       "def snd p := match p with | MkP _ b => b end\n"
       "def main := fst (MkP 1 2) + snd (MkP 3 4)"},
      {"compose_closures",
       "def compose f g x := f (g x)\n"
       "def inc x := x + 1\n"
       "def dbl x := x * 2\n"
       "def main := compose inc dbl 10"},
      {"println", "def main := println 1"},
      {"multi_column_match",
       "def eval x y z := match x, y, z with\n"
       "  | 0, 2, _ => 40 | 0, _, 2 => 50 | _, _, _ => 60 end\n"
       "def main := eval 0 2 1 + eval 0 1 2 + eval 1 1 1"},
      {"array_ops",
       "def main := let a := arrayPush (arrayPush (arrayMk 0 0) 5) 7;\n"
       "            arrayGet a 0 * arrayGet a 1"},
      {"nat_sub_clamp", "def f x := x - 100\ndef main := f 3"},
      {"bigint_mul", "def main := 123456789123456789 * 987654321987654321"},
      // INT64_MIN / -1: the one signed division that overflows int64. The
      // magnitudes only fit as bignums; when optimization folds them into
      // small-int constants, the VM constant pools must not truncate to 63
      // bits and the quotient must come out exact on every pipeline.
      {"int_min_div_neg1",
       "def main := (0 - 9223372036854775808) / (0 - 1)"},
      // Closure-optimization coverage: saturated local chains
      // (devirtualization), curried returns (arity raising, direct and
      // through a forwarding call), and escapes the passes must refuse.
      {"partial_apply_chain",
       "def add3 a b c := a + b * c\n"
       "def main := let f := add3 7; let g := f 2; g 3"},
      {"uncurry_return_pap",
       "def addK k x := x + k\n"
       "def mkAdd a := addK a\n"
       "def main := mkAdd 5 7"},
      {"uncurry_through_call",
       "def addK k x := x + k\n"
       "def mkAdd a := addK a\n"
       "def mkAdd2 a := mkAdd (a + 1)\n"
       "def main := mkAdd2 5 7"},
      {"closure_escape_ctor",
       "inductive B := | MkB f\n"
       "def addK k x := x + k\n"
       "def applyBox b x := match b with | MkB f => f x end\n"
       "def main := applyBox (MkB (addK 4)) 10"},
      {"closure_merge_same_callee",
       "def addK k x := x + k\n"
       "def pick c := if c == 0 then addK 10 else addK 20\n"
       "def main := pick 1 5"},
  };
  return Corpus;
}

const BenchProgram &lz::programs::getBenchmark(const std::string &Name) {
  for (const BenchProgram &P : getBenchmarkSuite())
    if (Name == P.Name)
      return P;
  for (const BenchProgram &P : getHigherOrderSuite())
    if (Name == P.Name)
      return P;
  assert(false && "unknown benchmark");
  static BenchProgram Dummy{};
  return Dummy;
}

std::string lz::programs::instantiate(const BenchProgram &P, long Size) {
  std::string Src = P.SourceTemplate;
  std::string SizeStr = std::to_string(Size);
  size_t Pos;
  while ((Pos = Src.find("@N@")) != std::string::npos)
    Src.replace(Pos, 3, SizeStr);
  return Src;
}
