//===- Generator.cpp - random well-typed MiniLean programs ---------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//

#include "programs/Generator.h"

using namespace lz;
using namespace lz::programs;

namespace {

/// Fixed helpers every generated program may lean on. The recursive ones
/// (range, suml, applyN) are structurally terminating; everything else is
/// non-recursive, so generated programs terminate by construction.
const char *Prelude = R"(
inductive L := | Nil | Cons h t
def range n := if n <= 0 then Nil else Cons n (range (n - 1))
def suml xs := match xs with | Nil => 0 | Cons h t => h + suml t end
def take2 xs := match xs with
  | Cons a (Cons b _) => a * 31 + b
  | Cons a _ => a
  | Nil => 7
end
def applyTwice f x := f (f x)
def compose f g x := f (g x)
def applyN n f x := if n <= 0 then x else applyN (n - 1) f (f x)
)";

} // namespace

ProgramGenerator::ProgramGenerator(unsigned Seed, GeneratorOptions Opts)
    : Rng(Seed), Opts(Opts) {}

std::string ProgramGenerator::generate() {
  std::string Src = Prelude;
  if (Opts.ExtraInductives)
    Src += genInductives();
  unsigned Span = Opts.MaxFunctions >= Opts.MinFunctions
                      ? Opts.MaxFunctions - Opts.MinFunctions + 1
                      : 1;
  unsigned NumFuncs = Opts.MinFunctions + pick(Span);
  for (unsigned I = 0; I != NumFuncs; ++I) {
    unsigned Arity = 1 + pick(3);
    Funcs.push_back({"f" + std::to_string(I), Arity});
    Src += "def f" + std::to_string(I);
    Vars.clear();
    for (unsigned A = 0; A != Arity; ++A) {
      std::string P = "p" + std::to_string(A);
      Src += " " + P;
      Vars.push_back(P);
    }
    // Only earlier functions are callable: termination by construction.
    CallableCount = I;
    Src += " := " + genExpr(Opts.BodyDepth) + "\n";
  }
  Vars.clear();
  CallableCount = NumFuncs;
  Src += "def main := " + genExpr(Opts.MainDepth) + "\n";
  return Src;
}

/// Declares 0-2 inductives `T<i> := | T<i>c0 ... | ...` whose constructor
/// fields are all integers, so constructing and matching them stays within
/// the integer-valued expression discipline.
std::string ProgramGenerator::genInductives() {
  std::string Src;
  unsigned Count = pick(3);
  for (unsigned I = 0; I != Count; ++I) {
    InductiveInfo Ind;
    Ind.Name = "T" + std::to_string(I);
    std::string Decl = "inductive " + Ind.Name + " :=";
    unsigned NumCtors = 2 + pick(2);
    for (unsigned C = 0; C != NumCtors; ++C) {
      CtorInfo Ctor;
      Ctor.Name = Ind.Name + "c" + std::to_string(C);
      Ctor.Arity = pick(3);
      Decl += " | " + Ctor.Name;
      for (unsigned A = 0; A != Ctor.Arity; ++A)
        Decl += " x" + std::to_string(A);
      Ind.Ctors.push_back(std::move(Ctor));
    }
    Src += Decl + "\n";
    Inductives.push_back(std::move(Ind));
  }
  return Src;
}

std::string ProgramGenerator::genLiteral() {
  switch (pick(6)) {
  case 0:
    return "0";
  case 1:
    return "1";
  case 2: // large: forces the bignum escape path
    return "4611686018427387000";
  default:
    return std::to_string(pick(1000));
  }
}

std::string ProgramGenerator::genVar() {
  if (Vars.empty())
    return genLiteral();
  return Vars[pick(static_cast<unsigned>(Vars.size()))];
}

std::string ProgramGenerator::genSmall() {
  return pick(2) ? genLiteral() : genVar();
}

/// An int-to-int lambda over the current scope; captures a local when one
/// is available so lambda lifting always has something to hoist.
std::string ProgramGenerator::genLambda(unsigned Depth) {
  std::string Param = "q" + std::to_string(NextLocal++);
  Vars.push_back(Param);
  std::string Body;
  switch (pick(3)) {
  case 0:
    Body = Param + " + " + genSmall();
    break;
  case 1:
    Body = Param + " * " + std::to_string(2 + pick(5)) + " + " + genSmall();
    break;
  default:
    Body = genExpr(Depth > 1 ? Depth - 2 : 0);
    break;
  }
  Vars.pop_back();
  return "(fun " + Param + " => " + Body + ")";
}

/// Constructs a value of a random user inductive and immediately matches
/// on it: every constructor gets an arm folding its integer fields, plus a
/// trailing wildcard so the match stays exhaustive however tags shake out.
std::string ProgramGenerator::genAdtMatch(unsigned Depth) {
  const InductiveInfo &Ind =
      Inductives[pick(static_cast<unsigned>(Inductives.size()))];
  const CtorInfo &Built = Ind.Ctors[pick(static_cast<unsigned>(
      Ind.Ctors.size()))];
  std::string Value = Built.Name;
  for (unsigned I = 0; I != Built.Arity; ++I)
    Value += " (" + genExpr(Depth > 1 ? Depth - 2 : 0) + ")";
  std::string M = "(match " + Value + " with";
  for (const CtorInfo &C : Ind.Ctors) {
    M += " | " + C.Name;
    std::string Sum;
    for (unsigned I = 0; I != C.Arity; ++I) {
      std::string Field = "m" + std::to_string(I);
      M += " " + Field;
      Sum += (I ? " + " : "") + Field;
    }
    M += " => " + (Sum.empty() ? genSmall() : Sum);
  }
  M += " | _ => " + genSmall() + " end)";
  return M;
}

std::string ProgramGenerator::genExpr(unsigned Depth) {
  if (Depth == 0)
    return genSmall();
  switch (pick(14)) {
  case 0:
    return genLiteral();
  case 1:
    return genVar();
  case 2: { // arithmetic
    const char *Ops[] = {"+", "-", "*", "/", "%"};
    return "(" + genExpr(Depth - 1) + " " + Ops[pick(5)] + " " +
           genExpr(Depth - 1) + ")";
  }
  case 3: { // comparison (produces 0/1)
    const char *Ops[] = {"==", "!=", "<", "<=", ">", ">="};
    return "(" + genExpr(Depth - 1) + " " + Ops[pick(6)] + " " +
           genExpr(Depth - 1) + ")";
  }
  case 4: // conditional
    return "(if " + genExpr(Depth - 1) + " < " + genExpr(Depth - 1) +
           " then " + genExpr(Depth - 1) + " else " + genExpr(Depth - 1) +
           ")";
  case 5: { // let binding (extends scope)
    std::string Name = "v" + std::to_string(NextLocal++);
    std::string Val = genExpr(Depth - 1);
    Vars.push_back(Name);
    std::string Body = genExpr(Depth - 1);
    Vars.pop_back();
    return "(let " + Name + " := " + Val + "; " + Body + ")";
  }
  case 6: // integer match with literal patterns (Figure 4 staging)
    return "(match (" + genExpr(Depth - 1) +
           ") % 4 with | 0 => " + genExpr(Depth - 1) +
           " | 1 => " + genExpr(Depth - 1) +
           " | _ => " + genExpr(Depth - 1) + " end)";
  case 7: // list workout through the prelude
    return pick(2) ? "(suml (range ((" + genExpr(Depth - 1) + ") % 15)))"
                   : "(take2 (range ((" + genExpr(Depth - 1) +
                         ") % 9)))";
  case 8: { // call an earlier generated function (saturated)
    if (CallableCount == 0)
      return genVar();
    const FuncInfo &F = Funcs[pick(CallableCount)];
    std::string Call = "(" + F.Name;
    for (unsigned I = 0; I != F.Arity; ++I)
      Call += " (" + genExpr(Depth > 1 ? Depth - 2 : 0) + ")";
    return Call + ")";
  }
  case 9: { // higher-order: partial application through applyTwice
    // Find an earlier function of arity >= 2 to partially apply.
    for (unsigned Try = 0; Try != 4 && CallableCount != 0; ++Try) {
      const FuncInfo &F = Funcs[pick(CallableCount)];
      if (F.Arity < 2)
        continue;
      std::string Closure = "(" + F.Name;
      for (unsigned I = 0; I + 1 < F.Arity; ++I)
        Closure += " (" + genSmall() + ")";
      Closure += ")";
      return "(applyTwice " + Closure + " (" + genSmall() + "))";
    }
    return genLiteral();
  }
  case 10: // nested constructor patterns over the prelude list
    return "(match range ((" + genExpr(Depth - 1) +
           ") % 6) with | Cons a (Cons b t) => a * 31 + b + suml t"
           " | Cons a _ => a | Nil => " +
           genExpr(Depth - 1) + " end)";
  case 11: // lambda shapes: direct, composed, or let-bound closure
    switch (pick(3)) {
    case 0:
      return "(applyTwice " + genLambda(Depth) + " (" + genSmall() + "))";
    case 1:
      return "(compose " + genLambda(Depth) + " " + genLambda(Depth) +
             " (" + genSmall() + "))";
    default: {
      // The closure name is deliberately NOT visible to the argument
      // expression: locals in Vars are integer-typed by discipline.
      std::string Name = "g" + std::to_string(NextLocal++);
      std::string Fn = genLambda(Depth);
      std::string Arg = genSmall();
      return "(let " + Name + " := " + Fn + "; " + Name + " (" + Arg +
             "))";
    }
    }
  case 12: // user inductive construct-then-match
    if (!Inductives.empty())
      return genAdtMatch(Depth);
    return genSmall();
  case 13: { // pap through let: under-saturate an earlier function
    for (unsigned Try = 0; Try != 4 && CallableCount != 0; ++Try) {
      const FuncInfo &F = Funcs[pick(CallableCount)];
      if (F.Arity < 2)
        continue;
      std::string Name = "h" + std::to_string(NextLocal++);
      std::string Bind = "(let " + Name + " := " + F.Name;
      Bind += " (" + genSmall() + ")"; // apply first arg only
      Bind += "; " + Name;
      for (unsigned I = 1; I != F.Arity; ++I)
        Bind += " (" + genSmall() + ")";
      return Bind + ")";
    }
    return "(applyN ((" + genExpr(Depth - 1) + ") % 5) " +
           genLambda(Depth) + " (" + genSmall() + "))";
  }
  }
  return genLiteral();
}
