//===- region_optimization.cpp - Figure 1 A/B/C, step by step -------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Shows the three transformations of the paper's Figure 1 as real IR
/// rewrites: dead expression elimination (DCE on rgn.val), case
/// elimination (select fold + continuation beta), and common branch
/// elimination (region CSE + select fold), printing the IR before and
/// after each pass pipeline.
///
/// Run: build/examples/region_optimization
///
//===----------------------------------------------------------------------===//

#include "dialect/Arith.h"
#include "dialect/Dialects.h"
#include "dialect/Func.h"
#include "dialect/Lp.h"
#include "dialect/Rgn.h"
#include "ir/Builder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "rewrite/Passes.h"
#include "support/OStream.h"

using namespace lz;

namespace {

Value *makeConstRegion(OpBuilder &B, int64_t Value) {
  Operation *Val = rgn::buildVal(B, {});
  OpBuilder::InsertionGuard Guard(B);
  B.setInsertionPointToEnd(rgn::getValBody(Val).getEntryBlock());
  Operation *C = lp::buildInt(B, Value);
  lp::buildReturn(B, values(C->getResult(0)));
  return Val->getResult(0);
}

void optimizeAndPrint(Operation *Module, const char *Title) {
  outs() << "--- before ---\n" << printToString(Module);
  PassManager PM;
  PM.addPass(createCanonicalizerPass());
  PM.addPass(createCSEPass());
  PM.addPass(createCanonicalizerPass());
  PM.addPass(createDCEPass());
  if (failed(PM.run(Module))) {
    errs() << "pass pipeline failed for " << Title << '\n';
    return;
  }
  outs() << "--- after canonicalize+cse+dce ---\n" << printToString(Module);
}

} // namespace

int main() {
  Context Ctx;
  registerAllDialects(Ctx);

  {
    outs() << "=== Figure 1-A: Dead Expression Elimination ===\n"
           << "   out = let x = e in y   ==>   out = y\n";
    OwningOpRef Module = createModule(Ctx);
    OpBuilder B(Ctx);
    Operation *Fn = func::buildFunc(
        Ctx, Module.get(), "fig1a",
        Ctx.getFunctionType({}, {Ctx.getBoxType()}));
    B.setInsertionPointToEnd(func::getFuncEntryBlock(Fn));
    makeConstRegion(B, 3); // %x = rgn.val { e } — dead
    Operation *Y = lp::buildInt(B, 5);
    lp::buildReturn(B, values(Y->getResult(0)));
    optimizeAndPrint(Module.get(), "fig1a");
  }

  {
    outs() << "\n=== Figure 1-B: Case Elimination ===\n"
           << "   out = case True of True -> e | False -> f   ==>   out = e\n";
    OwningOpRef Module = createModule(Ctx);
    OpBuilder B(Ctx);
    Operation *Fn = func::buildFunc(
        Ctx, Module.get(), "fig1b",
        Ctx.getFunctionType({}, {Ctx.getBoxType()}));
    B.setInsertionPointToEnd(func::getFuncEntryBlock(Fn));
    Value *E = makeConstRegion(B, 3);
    Value *F = makeConstRegion(B, 5);
    Value *True = arith::buildConstant(B, Ctx.getI1(), 1)->getResult(0);
    Value *Sel = arith::buildSelect(B, True, E, F)->getResult(0);
    rgn::buildRun(B, Sel, {});
    optimizeAndPrint(Module.get(), "fig1b");
  }

  {
    outs() << "\n=== Figure 1-C: Common Branch Elimination ===\n"
           << "   out = case x of True -> e | False -> e   ==>   out = e\n";
    OwningOpRef Module = createModule(Ctx);
    OpBuilder B(Ctx);
    Operation *Fn = func::buildFunc(
        Ctx, Module.get(), "fig1c",
        Ctx.getFunctionType({Ctx.getI1()}, {Ctx.getBoxType()}));
    Block *Entry = func::getFuncEntryBlock(Fn);
    B.setInsertionPointToEnd(Entry);
    Value *E1 = makeConstRegion(B, 7);
    Value *E2 = makeConstRegion(B, 7); // identical region, different value
    Value *Sel = arith::buildSelect(B, Entry->getArgument(0), E1, E2)
                     ->getResult(0);
    rgn::buildRun(B, Sel, {});
    optimizeAndPrint(Module.get(), "fig1c");
  }

  outs() << "\nAll three functional optimizations fell out of classical\n"
            "SSA passes applied to region values — the paper's core claim.\n";
  return 0;
}
