//===- quickstart.cpp - build, optimize, lower and run IR by hand --------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The five-minute tour of the public API:
///   1. create a Context and register the dialects,
///   2. build a function mixing lp data ops and rgn control flow,
///   3. run the classical SSA passes and watch regions optimize,
///   4. lower to a flat CFG and execute on the VM.
///
/// Run: build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "dialect/Arith.h"
#include "dialect/Dialects.h"
#include "dialect/Func.h"
#include "dialect/Lp.h"
#include "dialect/Rgn.h"
#include "ir/Builder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "lower/Lowering.h"
#include "rewrite/Passes.h"
#include "runtime/Object.h"
#include "support/OStream.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

using namespace lz;

int main() {
  // 1. Context + dialects.
  Context Ctx;
  registerAllDialects(Ctx);
  OwningOpRef Module = createModule(Ctx);
  OpBuilder B(Ctx);

  // 2. func @answer() -> !lp.t, computing Figure 1-B's
  //    "case True of True -> 3; False -> 5" via regions-as-values.
  Operation *Fn = func::buildFunc(
      Ctx, Module.get(), "answer", Ctx.getFunctionType({}, {Ctx.getBoxType()}));
  B.setInsertionPointToEnd(func::getFuncEntryBlock(Fn));

  auto MakeRegion = [&](int64_t Value) {
    Operation *Val = rgn::buildVal(B, {});
    OpBuilder::InsertionGuard Guard(B);
    B.setInsertionPointToEnd(rgn::getValBody(Val).getEntryBlock());
    Operation *C = lp::buildInt(B, Value);
    lp::buildReturn(B, values(C->getResult(0)));
    return Val->getResult(0);
  };
  Value *ThreeRegion = MakeRegion(3);
  Value *FiveRegion = MakeRegion(5);
  Value *True = arith::buildConstant(B, Ctx.getI1(), 1)->getResult(0);
  Value *Chosen =
      arith::buildSelect(B, True, ThreeRegion, FiveRegion)->getResult(0);
  rgn::buildRun(B, Chosen, {});

  outs() << "=== before optimization ===\n" << printToString(Module.get());

  // 3. Classical SSA passes: the select folds, the run inlines, dead
  //    regions disappear (the paper's Case Elimination).
  PassManager PM;
  PM.addPass(createCanonicalizerPass());
  PM.addPass(createCSEPass());
  PM.addPass(createDCEPass());
  if (failed(PM.run(Module.get())))
    return 1;

  outs() << "\n=== after canonicalize+cse+dce ===\n"
         << printToString(Module.get());

  // 4. Flatten to a CFG and execute.
  if (failed(lower::lowerRgnToCf(Module.get())))
    return 1;
  lower::markTailCalls(Module.get());
  outs() << "\n=== flat CFG ===\n" << printToString(Module.get());

  vm::Program Prog;
  std::string Error;
  if (failed(vm::compileModule(Module.get(), Prog, Error))) {
    errs() << "compile error: " << Error << '\n';
    return 1;
  }
  rt::Runtime RT;
  vm::VM Machine(Prog, RT, &outs());
  rt::ObjRef Result = Machine.run("answer", {});
  outs() << "\nanswer() = " << RT.toDisplayString(Result) << '\n';
  RT.dec(Result);
  outs() << "live heap cells after run: " << RT.getLiveObjects() << '\n';
  return 0;
}
