//===- lz-opt.cpp - textual IR pass driver (mlir-opt analogue) ------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reads textual IR, runs a pass pipeline, prints the result — the
/// FileCheck-style testing workflow the paper's Figure 11 credits to the
/// MLIR ecosystem ("Testing harness: FileCheck, llvm-lit"):
///
///   lz-opt input.lz --pass=canonicalize --pass=cse --pass=dce
///   lz-opt input.lz --lower-rgn-to-cf
///   echo '...' | lz-opt -
///
//===----------------------------------------------------------------------===//

#include "dialect/Dialects.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "lower/Lowering.h"
#include "rewrite/Passes.h"
#include "support/OStream.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace lz;

namespace {

int usage() {
  errs() << "usage: lz-opt <file|-> [--pass=canonicalize|cse|dce|inline]... "
            "[--lower-rgn-to-cf] [--verify-only]\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  std::vector<std::string> Passes;
  bool LowerRgn = false;
  bool VerifyOnly = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--pass=", 0) == 0)
      Passes.push_back(Arg.substr(7));
    else if (Arg == "--lower-rgn-to-cf")
      LowerRgn = true;
    else if (Arg == "--verify-only")
      VerifyOnly = true;
    else if (!Path)
      Path = argv[I];
    else
      return usage();
  }
  if (!Path)
    return usage();

  std::string Source;
  if (std::string(Path) == "-") {
    std::stringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      errs() << "error: cannot open '" << Path << "'\n";
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  Context Ctx;
  registerAllDialects(Ctx);
  std::string Error;
  Operation *Root = parseSourceString(Source, Ctx, Error);
  if (!Root) {
    errs() << "parse error: " << Error << '\n';
    return 1;
  }
  OwningOpRef Owner(Root);

  if (failed(verify(Root)))
    return 1;
  if (VerifyOnly) {
    outs() << "ok\n";
    return 0;
  }

  PassManager PM;
  for (const std::string &Name : Passes) {
    if (Name == "canonicalize")
      PM.addPass(createCanonicalizerPass());
    else if (Name == "cse")
      PM.addPass(createCSEPass());
    else if (Name == "dce")
      PM.addPass(createDCEPass());
    else if (Name == "inline")
      PM.addPass(createInlinerPass());
    else {
      errs() << "unknown pass '" << Name << "'\n";
      return usage();
    }
  }
  if (failed(PM.run(Root)))
    return 1;

  if (LowerRgn) {
    if (failed(lower::lowerRgnToCf(Root)))
      return 1;
    lower::markTailCalls(Root);
    if (failed(verify(Root)))
      return 1;
  }

  outs() << printToString(Root);
  return 0;
}
