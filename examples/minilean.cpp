//===- minilean.cpp - the MiniLean compiler driver -----------------------------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line compiler & runner for .mlean files — the analogue of the
/// artifact's `lean --run` workflow:
///
///   minilean prog.mlean                  # compile with the full pipeline, run main
///   minilean prog.mlean --variant=leanc  # pick a pipeline variant
///   minilean prog.mlean --dump=lp        # print IR after a stage and exit
///                                        # (stages: lambda, lp, rgn, cf)
///   minilean prog.mlean --oracle         # run the reference interpreter
///
//===----------------------------------------------------------------------===//

#include "dialect/Dialects.h"
#include "driver/Driver.h"
#include "ir/Printer.h"
#include "lambda/Interp.h"
#include "lambda/MiniLean.h"
#include "lambda/Simplify.h"
#include "lower/Lowering.h"
#include "rc/RCInsert.h"
#include "support/OStream.h"

#include <cstring>
#include <fstream>
#include <sstream>

using namespace lz;

namespace {

int usage() {
  errs() << "usage: minilean <file.mlean> [--variant=full|leanc|simp-only|"
            "rgn-only|no-opt] [--dump=lambda|lp|rgn|cf] [--oracle]\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  std::string Variant = "full";
  std::string Dump;
  bool Oracle = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--variant=", 0) == 0)
      Variant = Arg.substr(10);
    else if (Arg.rfind("--dump=", 0) == 0)
      Dump = Arg.substr(7);
    else if (Arg == "--oracle")
      Oracle = true;
    else if (!Path)
      Path = argv[I];
    else
      return usage();
  }
  if (!Path)
    return usage();

  std::ifstream In(Path);
  if (!In) {
    errs() << "error: cannot open '" << Path << "'\n";
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  lambda::Program P;
  std::string Error;
  if (failed(lambda::parseMiniLean(Buffer.str(), P, Error))) {
    errs() << Path << ": " << Error << '\n';
    return 1;
  }

  if (Oracle) {
    std::string Output;
    lambda::OVal V = lambda::interpret(P, "main", {}, Output);
    outs() << Output << lambda::displayOValue(V) << '\n';
    return 0;
  }

  lower::PipelineVariant PV;
  if (Variant == "full")
    PV = lower::PipelineVariant::Full;
  else if (Variant == "leanc")
    PV = lower::PipelineVariant::Leanc;
  else if (Variant == "simp-only")
    PV = lower::PipelineVariant::SimpOnly;
  else if (Variant == "rgn-only")
    PV = lower::PipelineVariant::RgnOnly;
  else if (Variant == "no-opt")
    PV = lower::PipelineVariant::NoOpt;
  else
    return usage();

  if (!Dump.empty()) {
    lambda::Program Copy = lambda::cloneProgram(P);
    lambda::simplifyProgram(Copy);
    if (Dump == "lambda") {
      for (const lambda::Function &F : Copy.Functions)
        outs() << "def " << F.Name << ":\n"
               << lambda::bodyToString(*F.Body) << '\n';
      return 0;
    }
    rc::insertRC(Copy);
    Context Ctx;
    registerAllDialects(Ctx);
    OwningOpRef Module = lower::lowerLambdaToLp(Copy, Ctx);
    if (Dump == "lp") {
      outs() << printToString(Module.get());
      return 0;
    }
    if (failed(lower::lowerLpToRgn(Module.get())))
      return 1;
    if (Dump == "rgn") {
      outs() << printToString(Module.get());
      return 0;
    }
    if (failed(lower::lowerRgnToCf(Module.get())))
      return 1;
    lower::markTailCalls(Module.get());
    if (Dump == "cf") {
      outs() << printToString(Module.get());
      return 0;
    }
    return usage();
  }

  driver::RunResult R = driver::runProgram(P, PV);
  if (!R.OK) {
    errs() << Path << ": " << R.Error << '\n';
    return 1;
  }
  outs() << R.Output << R.ResultDisplay << '\n';
  if (R.LiveObjects != 0) {
    errs() << "warning: " << R.LiveObjects << " heap cells leaked\n";
    return 1;
  }
  return 0;
}
