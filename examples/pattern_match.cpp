//===- pattern_match.cpp - Figure 5: join points deduplicate matches -----------===//
//
// Part of the lambda-ssa project, reproducing "Lambda the Ultimate SSA"
// (CGO 2022). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Walks the paper's Figure 5 end to end: the three-column pattern match
///
///   def eval : Int -> Int -> Int -> Int
///   | 0, 2, _ => 40
///   | 0, _, 2 => 50
///   | _, _, _ => 60
///
/// would duplicate the default right-hand side under naive compilation;
/// the match compiler emits join points instead. The demo shows the λpure
/// IR (jdecl/jmp), the lp dialect form (lp.joinpoint/lp.jump), the rgn
/// form (rgn.val/rgn.run), and finally runs all three sample calls.
///
/// Run: build/examples/pattern_match
///
//===----------------------------------------------------------------------===//

#include "dialect/Dialects.h"
#include "driver/Driver.h"
#include "ir/Printer.h"
#include "lambda/MiniLean.h"
#include "lower/Lowering.h"
#include "rc/RCInsert.h"
#include "support/OStream.h"

using namespace lz;

int main() {
  const char *Source = "def eval x y z := match x, y, z with\n"
                       "  | 0, 2, _ => 40\n"
                       "  | 0, _, 2 => 50\n"
                       "  | _, _, _ => 60\n"
                       "end\n"
                       "def main := eval 0 2 9 * 10000 + "
                       "eval 0 9 2 * 100 + eval 7 7 7\n";

  outs() << "=== MiniLean source (paper Figure 5) ===\n" << Source;

  lambda::Program P;
  std::string Error;
  if (failed(lambda::parseMiniLean(Source, P, Error))) {
    errs() << "parse error: " << Error << '\n';
    return 1;
  }

  outs() << "\n=== λpure ANF: the default arm is ONE join point, jumped to "
            "from every miss path ===\n"
         << lambda::bodyToString(*P.lookup("eval")->Body);

  // Lower to the lp dialect (with reference counting, as λrc).
  lambda::Program RC = lambda::cloneProgram(P);
  rc::insertRC(RC);
  Context Ctx;
  registerAllDialects(Ctx);
  OwningOpRef Module = lower::lowerLambdaToLp(RC, Ctx);
  outs() << "\n=== lp dialect: lp.joinpoint / lp.jump (Figure 5-C) ===\n"
         << printToString(lookupSymbol(Module.get(), "eval"));

  // Lower join points to region values.
  if (failed(lower::lowerLpToRgn(Module.get())))
    return 1;
  outs() << "\n=== rgn dialect: labels became rgn.val, jumps became rgn.run "
            "(Figure 8-C) ===\n"
         << printToString(lookupSymbol(Module.get(), "eval"));

  // And execute the whole thing.
  driver::RunResult R =
      driver::runProgram(P, lower::PipelineVariant::Full);
  if (!R.OK) {
    errs() << "compile error: " << R.Error << '\n';
    return 1;
  }
  outs() << "\neval(0,2,9), eval(0,9,2), eval(7,7,7) packed = "
         << R.ResultDisplay << "  (expect 405060)\n";
  return 0;
}
